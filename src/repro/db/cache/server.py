"""The out-of-process persistent cache server.

One :class:`CacheServer` holds a bounded LRU of encoded cache entries —
addressed by the canonical key bytes of :func:`repro.db.cache.wire.encode_key`
— and serves them to any number of :class:`~repro.db.cache.remote.RemoteCacheBackend`
clients over the length-prefixed binary frame protocol of
:mod:`repro.db.cache.wire`.  Because keys are content-fingerprint namespaced
(:mod:`repro.db.cache.fingerprints`), processes that never forked from each
other — a batch evaluation run today, a serving process tomorrow — address
the same entries for the same logical database, which is what lets a batch
run warm the online server's cubes and exact answers (and vice versa).

The server never decodes a value: it is a byte store.  All interpretation
(array framing, freezing, promotion into an L1) happens in the client, so a
misbehaving payload can harm only the client that wrote it.  Store
operations — including the write-through sqlite persistence — run
synchronously on the event loop: entries are artefact-sized (KBs) and the
writes are single-row, so a round-trip costs microseconds-to-milliseconds;
a deployment pushing enough concurrent writers for that to head-of-line
block readers should revisit this with an executor or write batching.

Persistence is optional (``--path``): entries are written through to a
sqlite file as they arrive and loaded back at startup, so a restarted server
begins warm.  A corrupted or truncated file is moved aside with a warning
and the server starts empty — persistence is an optimisation, never a
correctness dependency (exactly like every other cache tier in this
repository).

Run it standalone::

    python -m repro.db.cache.server --path cache.db --port 8643

or embedded on a background thread (tests, benchmarks, the ``--cache-path``
convenience of the evaluation CLI) via :class:`CacheServerThread`.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sqlite3
import sys
import threading
import time
import warnings
from pathlib import Path
from typing import Optional, Sequence, Tuple

from repro.db.cache.backend import DEFAULT_EVICTION_POLICY, EVICTION_POLICIES
from repro.db.cache.wire import (
    key_from_header,
    key_to_header,
    read_frame_async,
    write_frame_async,
)
from repro.obs.metrics import render_prometheus, unified_snapshot
from repro.obs.trace import record_span

__all__ = ["CacheServer", "CacheServerThread", "CacheStore", "MissLog", "main"]

#: Bumped when the persistence schema or the op set changes incompatibly.
#: v2 added cost/size metadata on ``put``, the ``warm`` miss-log op and the
#: byte-budget counters; every v1 op is answered unchanged, so old clients
#: keep working against a v2 server.  Within v2, later additions stay
#: backward compatible: the ``telemetry`` op and the optional ``trace``
#: header field on get/put (ignored by servers that predate it).
SERVER_PROTOCOL = 2


# ----------------------------------------------------------------------
# the store: bounded LRU, optionally written through to sqlite
# ----------------------------------------------------------------------
class CacheStore:
    """Byte entries addressed by ``(namespace, region, key bytes)``.

    Entries live in a dict plus a metadata side-table carrying each entry's
    recompute cost, byte size, access frequency and eviction priority; with a
    ``path`` they are also written through to a sqlite table and loaded back
    on construction (in persisted access order, so a restarted server evicts
    in exactly the order the old one would have).  Eviction — lowest
    cost-normalized utility first under ``policy="cost"``, least recently
    used under ``policy="lru"``, past ``max_entries`` *or* ``max_bytes`` —
    deletes from both tiers, so the disk file never outgrows the memory
    bound.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        policy: str = DEFAULT_EVICTION_POLICY,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r} (use one of {EVICTION_POLICIES})")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.policy = policy
        self.path = Path(path) if path is not None else None
        self._data: dict[Tuple[str, str, bytes], bytes] = {}
        #: address -> [priority, seq, nbytes, freq, cost | None]
        self._meta: dict[Tuple[str, str, bytes], list] = {}
        self._clock = 0.0
        self._seq = 0
        self._bytes = 0
        self._conn: Optional[sqlite3.Connection] = None
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.rejected_puts = 0
        self.loaded_from_disk = 0
        if self.path is not None:
            self._open_persistence()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _open_persistence(self) -> None:
        """Open (or recover) the sqlite file and load its entries.

        Any :class:`sqlite3.Error` while opening or loading means the file
        is corrupt or truncated: it is moved aside (``<path>.corrupt``) with
        a warning and a fresh empty file replaces it — the server must start,
        cold, rather than crash on a bad disk state.  If even a fresh file
        cannot be opened (unwritable directory), the store continues
        memory-only with a second warning; persistence is never worth a
        startup crash.
        """
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass  # an unreachable parent is reported by the connect below
        stored_clock = 0.0
        try:
            self._conn = self._connect()
            # Oldest-accessed first, so the in-memory insertion order (and
            # the restored seq/priority metadata) reproduces the eviction
            # order the previous server would have used — a warm restart must
            # not turn the first eviction pass into a random purge.  Rows a
            # pre-metadata server wrote (NULL last_access) sort first, in
            # their original insertion (rowid) order.
            rows = self._conn.execute(
                "SELECT namespace, region, key, value, cost, nbytes, freq,"
                " last_access, priority FROM cache_entries"
                " ORDER BY last_access IS NOT NULL, last_access, rowid"
            ).fetchall()
            meta_row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key = 'clock'"
            ).fetchone()
            if meta_row is not None:
                stored_clock = float(meta_row[0])
        except sqlite3.Error as error:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
            quarantine = self.path.with_suffix(self.path.suffix + ".corrupt")
            try:
                self.path.replace(quarantine)
                where = f"moved aside to {quarantine}"
            except OSError:
                where = "left in place"
            # A crash can leave -wal/-shm sidecars behind; a stale WAL next
            # to a *fresh* database file would be replayed (or refused) at
            # the recovery connect, so drop the sidecars with the body.
            for suffix in ("-wal", "-shm"):
                sidecar = Path(str(self.path) + suffix)
                try:
                    sidecar.unlink()
                except OSError:
                    pass
            warnings.warn(
                f"cache persistence file {self.path} is unreadable ({error}); "
                f"{where}, starting with an empty cache",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                self._conn = self._connect()
            except sqlite3.Error as fresh_error:
                warnings.warn(
                    f"cannot create a fresh persistence file at {self.path} "
                    f"({fresh_error}); continuing memory-only",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._conn = None
                self.path = None
            rows = []
        self._clock = stored_clock
        for namespace, region, key, value, cost, nbytes, freq, last_access, priority in rows:
            address = (namespace, region, bytes(key))
            value = bytes(value)
            nbytes = len(value) if nbytes is None else int(nbytes)
            freq = 1 if freq is None else int(freq)
            seq = self._seq + 1 if last_access is None else int(last_access)
            self._seq = max(self._seq, seq)
            if priority is None:
                priority = self._priority(seq, freq, cost, nbytes)
            self._data[address] = value
            self._meta[address] = [float(priority), seq, nbytes, freq, cost]
            self._bytes += nbytes
        self.loaded_from_disk = len(self._data)
        # A file written under a larger bound still honours this server's.
        self._evict_over_budget()

    def _connect(self) -> sqlite3.Connection:
        # The store may be built on one thread (CacheServerThread.__init__)
        # and used on another (the event loop); only one thread ever touches
        # it at a time, so the same-thread guard is safely waived.
        conn = sqlite3.connect(self.path, isolation_level=None, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS cache_entries ("
            " namespace TEXT NOT NULL,"
            " region TEXT NOT NULL,"
            " key BLOB NOT NULL,"
            " value BLOB NOT NULL,"
            " cost REAL,"
            " nbytes INTEGER,"
            " freq INTEGER,"
            " last_access INTEGER,"
            " priority REAL,"
            " PRIMARY KEY (namespace, region, key))"
        )
        # Migrate protocol-v1 files in place: the old four-column table gains
        # the metadata columns (NULL for existing rows — the loader fills in
        # defaults), so a warm file from an old server is never quarantined.
        present = {row[1] for row in conn.execute("PRAGMA table_info(cache_entries)")}
        for column, column_type in (
            ("cost", "REAL"),
            ("nbytes", "INTEGER"),
            ("freq", "INTEGER"),
            ("last_access", "INTEGER"),
            ("priority", "REAL"),
        ):
            if column not in present:
                conn.execute(f"ALTER TABLE cache_entries ADD COLUMN {column} {column_type}")
        conn.execute("CREATE TABLE IF NOT EXISTS store_meta (key TEXT PRIMARY KEY, value TEXT)")
        return conn

    def flush_metadata(self) -> None:
        """Write the in-memory access metadata (frequency, recency, priority,
        clock) through to sqlite.  Puts and evictions persist row state as
        they happen; the per-``get`` freshening is memory-only until this
        flush (called on close), so a hard kill loses at most recency — never
        an entry."""
        if self._conn is None:
            return
        try:
            self._conn.executemany(
                "UPDATE cache_entries SET cost = ?, nbytes = ?, freq = ?,"
                " last_access = ?, priority = ?"
                " WHERE namespace = ? AND region = ? AND key = ?",
                [
                    (meta[4], meta[2], meta[3], meta[1], meta[0], *address)
                    for address, meta in self._meta.items()
                ],
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) VALUES ('clock', ?)",
                (repr(self._clock),),
            )
        except sqlite3.Error:  # pragma: no cover - disk died mid-run
            pass

    def close(self) -> None:
        if self._conn is not None:
            self.flush_metadata()
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - nothing left to save
                pass
            self._conn = None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _priority(self, seq: int, freq: int, cost: Optional[float], nbytes: int) -> float:
        """The eviction priority of an entry (lowest evicts first).

        ``policy="cost"`` is GreedyDual-Size-Frequency: ``clock + freq ×
        cost / bytes``, with a neutral term of 1.0 for cost-less entries;
        ``policy="lru"`` is the access sequence number — exact LRU.
        """
        if self.policy == "lru":
            return float(seq)
        term = 1.0 if cost is None else max(float(cost), 0.0) / max(int(nbytes), 1)
        return self._clock + freq * term

    def get(self, namespace: str, region: str, key: bytes) -> Optional[bytes]:
        address = (namespace, region, key)
        value = self._data.pop(address, None)
        if value is None:
            self.misses += 1
            return None
        self._data[address] = value  # freshen in insertion order
        meta = self._meta.get(address)
        if meta is not None:
            meta[3] += 1
            self._seq += 1
            meta[1] = self._seq
            meta[0] = self._priority(meta[1], meta[3], meta[4], meta[2])
        self.hits += 1
        return value

    def entry_cost(self, namespace: str, region: str, key: bytes) -> Optional[float]:
        meta = self._meta.get((namespace, region, key))
        return None if meta is None else meta[4]

    def put(
        self,
        namespace: str,
        region: str,
        key: bytes,
        value: bytes,
        cost: Optional[float] = None,
    ) -> bool:
        """Store ``value``; returns ``False`` when the byte budget refuses it
        (a payload larger than the whole budget is never admitted)."""
        address = (namespace, region, key)
        nbytes = len(value)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            self.rejected_puts += 1
            return False
        self._discard(address)
        self._seq += 1
        self._data[address] = value
        self._meta[address] = [self._priority(self._seq, 1, cost, nbytes), self._seq, nbytes, 1, cost]
        self._bytes += nbytes
        self.puts += 1
        if self._conn is not None:
            meta = self._meta[address]
            self._conn.execute(
                "INSERT OR REPLACE INTO cache_entries"
                " (namespace, region, key, value, cost, nbytes, freq, last_access, priority)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (namespace, region, key, value, cost, nbytes, 1, meta[1], meta[0]),
            )
        self._evict_over_budget()
        return True

    def _discard(self, address: Tuple[str, str, bytes]) -> None:
        if self._data.pop(address, None) is not None:
            meta = self._meta.pop(address, None)
            if meta is not None:
                self._bytes -= meta[2]

    def _over_budget(self) -> bool:
        if len(self._data) > self.max_entries:
            return True
        return self.max_bytes is not None and self._bytes > self.max_bytes and len(self._data) > 1

    def _evict_over_budget(self) -> None:
        while self._over_budget():
            self._evict_one()

    def _evict_one(self) -> None:
        """Evict the lowest-priority entry (deterministic tie-break on the
        access sequence), raising the decay clock to its priority."""
        live = {a: m for a, m in self._meta.items() if a in self._data}
        if live:
            address, meta = min(live.items(), key=lambda item: (item[1][0], item[1][1]))
            if self.policy != "lru":
                self._clock = max(self._clock, meta[0])
        else:  # metadata desynced (only possible via direct _data surgery)
            address = next(iter(self._data))
        self._discard(address)
        self._meta.pop(address, None)
        self.evictions += 1
        if self._conn is not None:
            self._conn.execute(
                "DELETE FROM cache_entries WHERE namespace = ? AND region = ? AND key = ?",
                address,
            )

    def clear(self, namespace: Optional[str] = None) -> int:
        """Drop a namespace (or everything); a full clear also zeroes the
        counters — the cross-backend contract for ``clear()``."""
        if namespace is None:
            removed = len(self._data)
            self._data.clear()
            self._meta.clear()
            self._bytes = 0
            self._clock = 0.0
            if self._conn is not None:
                self._conn.execute("DELETE FROM cache_entries")
            self.reset_stats()
            return removed
        stale = [address for address in self._data if address[0] == namespace]
        for address in stale:
            self._discard(address)
        if self._conn is not None:
            self._conn.execute("DELETE FROM cache_entries WHERE namespace = ?", (namespace,))
        return len(stale)

    def entry_count(self, namespace: Optional[str] = None) -> int:
        if namespace is None:
            return len(self._data)
        return sum(1 for address in self._data if address[0] == namespace)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "rejected_puts": self.rejected_puts,
            "entries": len(self._data),
            "bytes_stored": self._bytes,
            "max_bytes": self.max_bytes,
            "policy": self.policy,
            "loaded_from_disk": self.loaded_from_disk,
            "persisted": self.path is not None,
        }

    def reset_stats(self) -> None:
        self.hits = self.misses = self.puts = self.evictions = self.rejected_puts = 0


class MissLog:
    """Observed-but-missed addresses, per namespace, for warm-ahead feeds.

    The server cannot replay a miss itself (it never decodes keys, let alone
    runs the engine), but it is the one place that sees *every* client's
    misses — so it keeps a bounded log that warm-ahead workers poll through
    the ``warm`` op and replay against the engine on the client side.
    """

    def __init__(self, max_recent: int = 256):
        self.max_recent = int(max_recent)
        self.counts: dict[str, int] = {}
        self._recent: dict[Tuple[str, str, bytes], None] = {}  # ordered de-duped set
        self.recorded = 0

    def record(self, namespace: str, region: str, key: bytes) -> None:
        self.counts[namespace] = self.counts.get(namespace, 0) + 1
        self.recorded += 1
        address = (namespace, region, key)
        self._recent.pop(address, None)
        self._recent[address] = None  # re-append: most recent last
        while len(self._recent) > self.max_recent:
            self._recent.pop(next(iter(self._recent)))

    def snapshot(self, namespace: Optional[str] = None) -> list:
        return [
            [ns, region, key_to_header(key)]
            for ns, region, key in self._recent
            if namespace is None or ns == namespace
        ]

    def clear(self) -> None:
        self.counts.clear()
        self._recent.clear()


# ----------------------------------------------------------------------
# the asyncio server
# ----------------------------------------------------------------------
class CacheServer:
    """Serve a :class:`CacheStore` over length-prefixed binary frames."""

    def __init__(
        self,
        store: Optional[CacheStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        policy: str = DEFAULT_EVICTION_POLICY,
    ):
        if store is None:
            store = CacheStore(path=path, max_entries=max_entries, max_bytes=max_bytes, policy=policy)
        self.store = store
        self.miss_log = MissLog()
        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port on start
        self.bytes_received = 0
        self.bytes_sent = 0
        self.requests_served = 0
        self._started_at = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self.drain_timeout = 5.0

    # ------------------------------------------------------------------
    # lifecycle (mirrors repro.serving.server.QueryServer)
    # ------------------------------------------------------------------
    async def start(self) -> "CacheServer":
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting and drain: a connection whose request has been
        read gets its response written (up to ``drain_timeout``) before the
        transport closes — a shutdown must never eat an answered frame."""
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers - self._busy):
            writer.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        # Let the per-connection handlers observe their closed transports and
        # finish, so the loop never tears down a still-pending task.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self.store.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    header, payload, frame_size = await read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client went away (cleanly or not)
                except ValueError as error:
                    # A garbage length prefix or non-object header cannot be
                    # resynchronised: answer structurally, drop the link.
                    try:
                        self.bytes_sent += await write_frame_async(
                            writer, {"ok": False, "error": f"bad frame: {error}"}
                        )
                    except ConnectionError:
                        pass
                    break
                self.bytes_received += frame_size
                # Busy while a read frame awaits its response, so a graceful
                # shutdown drains this write instead of cutting it.
                self._busy.add(writer)
                try:
                    response, out_payload, stop_after = self._dispatch(header, payload)
                    try:
                        self.bytes_sent += await write_frame_async(writer, response, out_payload)
                    except ConnectionError:
                        break
                finally:
                    self._busy.discard(writer)
                if stop_after:
                    self.request_shutdown()
                    break
        except asyncio.CancelledError:
            pass  # shutdown cancelled this connection mid-read
        finally:
            self._writers.discard(writer)
            writer.close()

    def _dispatch(self, header: dict, payload: bytes) -> Tuple[dict, bytes, bool]:
        try:
            return self._dispatch_op(header, payload)
        except Exception as error:  # never a traceback on the wire
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}, b"", False

    def _dispatch_op(self, header: dict, payload: bytes) -> Tuple[dict, bytes, bool]:
        op = header.get("op")
        self.requests_served += 1
        if op == "ping":
            return (
                {
                    "ok": True,
                    "server": "repro-cache-server",
                    "protocol": SERVER_PROTOCOL,
                    "entries": self.store.entry_count(),
                    "persisted": self.store.path is not None,
                    "uptime_s": round(time.monotonic() - self._started_at, 3),
                },
                b"",
                False,
            )
        if op == "get":
            began = time.perf_counter()
            namespace, region, key = self._address(header)
            value = self.store.get(namespace, region, key)
            if value is None:
                self.miss_log.record(namespace, region, key)
                record_span(
                    "cache_server.get", header.get("trace"),
                    time.perf_counter() - began, region=region, hit=False,
                )
                return {"ok": True, "hit": False}, b"", False
            response = {"ok": True, "hit": True}
            cost = self.store.entry_cost(namespace, region, key)
            if cost is not None:
                response["cost"] = cost
            record_span(
                "cache_server.get", header.get("trace"),
                time.perf_counter() - began,
                region=region, hit=True, nbytes=len(value),
            )
            return response, value, False
        if op == "put":
            began = time.perf_counter()
            namespace, region, key = self._address(header)
            cost = header.get("cost")
            stored = self.store.put(
                namespace, region, key, payload, None if cost is None else float(cost)
            )
            record_span(
                "cache_server.put", header.get("trace"),
                time.perf_counter() - began,
                region=region, stored=stored, nbytes=len(payload),
            )
            return {"ok": True, "stored": stored}, b"", False
        if op == "warm":
            namespace = header.get("namespace")
            scope = None if namespace is None else str(namespace)
            response = {
                "ok": True,
                "recorded": self.miss_log.recorded,
                "counts": dict(self.miss_log.counts),
                "recent": self.miss_log.snapshot(scope),
            }
            if header.get("clear"):
                self.miss_log.clear()
            return response, b"", False
        if op == "clear":
            namespace = header.get("namespace")
            removed = self.store.clear(None if namespace is None else str(namespace))
            return {"ok": True, "removed": removed}, b"", False
        if op == "count":
            namespace = header.get("namespace")
            count = self.store.entry_count(None if namespace is None else str(namespace))
            return {"ok": True, "count": count}, b"", False
        if op == "stats":
            stats = self.store.stats()
            stats.update(
                {
                    "requests_served": self.requests_served,
                    "bytes_received": self.bytes_received,
                    "bytes_sent": self.bytes_sent,
                    "miss_log_recorded": self.miss_log.recorded,
                }
            )
            return {"ok": True, "stats": stats}, b"", False
        if op == "telemetry":
            snapshot = self.telemetry_snapshot()
            return (
                {
                    "ok": True,
                    "telemetry": snapshot,
                    "prometheus": render_prometheus(snapshot, prefix="repro_cache_server"),
                },
                b"",
                False,
            )
        if op == "reset_stats":
            self.store.reset_stats()
            return {"ok": True}, b"", False
        if op == "shutdown":
            return {"ok": True, "stopping": True}, b"", True
        return {"ok": False, "error": f"unknown op {op!r}"}, b"", False

    def telemetry_snapshot(self) -> dict:
        """The server's state in the unified telemetry schema (the JSON half
        of the ``telemetry`` op; the legacy ``stats`` op is the compatibility
        shim and keeps its historical flat shape)."""
        from repro import __version__

        store = self.store.stats()
        return unified_snapshot(
            counters={
                "hits": store["hits"],
                "misses": store["misses"],
                "puts": store["puts"],
                "evictions": store["evictions"],
                "rejected_puts": store["rejected_puts"],
                "requests_served": self.requests_served,
                "bytes_received": self.bytes_received,
                "bytes_sent": self.bytes_sent,
                "miss_log_recorded": self.miss_log.recorded,
            },
            gauges={
                "entries": store["entries"],
                "bytes_stored": store["bytes_stored"],
                "loaded_from_disk": store["loaded_from_disk"],
                "uptime_s": round(time.monotonic() - self._started_at, 3),
            },
            histograms={},
            subsystem={
                "name": "cache-server",
                "version": __version__,
                "protocol": SERVER_PROTOCOL,
                "policy": store["policy"],
                "persisted": store["persisted"],
                "max_bytes": store["max_bytes"],
            },
        )

    @staticmethod
    def _address(header: dict) -> Tuple[str, str, bytes]:
        try:
            return (
                str(header["namespace"]),
                str(header["region"]),
                key_from_header(header["key"]),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise ValueError(f"request needs namespace/region/key fields: {error}") from None


class CacheServerThread:
    """Host a :class:`CacheServer` on a background event-loop thread.

    The embedded form used by tests, the ``cache_server`` benchmark and the
    evaluation CLI's ``--cache-path`` convenience (a run that wants a
    persistent cache without operating a separate server process)::

        with CacheServerThread(path="cache.db") as handle:
            backend = RemoteCacheBackend(port=handle.server.port)
    """

    def __init__(self, server: Optional[CacheServer] = None, **server_kwargs):
        self.server = server if server is not None else CacheServer(**server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> "CacheServerThread":
        self._thread = threading.Thread(
            target=self._run, name="cache-server-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("cache server event loop failed to start within 30s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as error:
            self._error = error
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.server.serve_until_shutdown())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the loop thread.

        Raises ``RuntimeError`` if the thread is still alive after
        ``timeout``: a silently leaked cache-server loop (and its bound
        port) would poison later tests, so a hung shutdown must be loud.
        """
        if self._thread is None or not self._thread.is_alive():
            return
        try:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        except RuntimeError:
            pass  # a 'shutdown' op already closed the loop under us
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"cache server event loop did not stop within {timeout}s "
                "(a handler or persistence write is hung); the thread is still alive"
            )

    def __enter__(self) -> "CacheServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# command line
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache-server",
        description="Serve a persistent artefact cache to batch and serving runs.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8643, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--path",
        default=None,
        help="sqlite file to persist entries to (omit for a memory-only server)",
    )
    parser.add_argument(
        "--max-entries",
        type=int,
        default=4096,
        help="bound on the number of cached entries",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget on the summed payload sizes (omit for entry-count only)",
    )
    parser.add_argument(
        "--policy",
        choices=EVICTION_POLICIES,
        default=DEFAULT_EVICTION_POLICY,
        help="eviction policy: cost-normalized utility (default) or plain LRU",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.db.cache.server``."""
    args = _build_parser().parse_args(argv)
    if args.max_entries < 1:
        print("--max-entries must be at least 1", file=sys.stderr)
        return 2
    if args.max_bytes is not None and args.max_bytes < 1:
        print("--max-bytes must be at least 1", file=sys.stderr)
        return 2
    server = CacheServer(
        host=args.host,
        port=args.port,
        path=args.path,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
        policy=args.policy,
    )
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        pass  # platforms without add_signal_handler: still exit cleanly
    print("cache server stopped")
    return 0


async def _serve(server: CacheServer) -> None:
    await server.start()
    where = server.store.path if server.store.path is not None else "memory only"
    print(
        f"cache server on {server.host}:{server.port} "
        f"(protocol v{SERVER_PROTOCOL}, {server.store.entry_count()} entries, "
        f"persistence: {where})",
        flush=True,
    )
    await server.serve_until_shutdown()


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
