"""A concrete star-schema database instance.

:class:`StarDatabase` binds a :class:`~repro.db.schema.StarSchema` to actual
:class:`~repro.db.table.Table` data and provides the navigation primitives
everything else builds on:

* foreign-key traversal from dimension-row selections to fact-row selections
  (the semi-join at the heart of star-join execution);
* snowflake traversal from an outer dimension (e.g. ``Month``) down to the
  dimension directly referenced by the fact table (e.g. ``Date``);
* fan-out statistics (how many fact tuples reference each dimension key),
  which the truncation- and sensitivity-based baselines are calibrated on.

Foreign-key columns in the fact table store the *row position* of the
referenced dimension tuple, which keeps joins to a single fancy-indexing
operation and makes the foreign-key constraints of the paper's neighbouring
definitions explicit.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.db.predicates import Predicate
from repro.db.schema import StarSchema
from repro.db.table import Table
from repro.exceptions import SchemaError

__all__ = ["StarDatabase"]


class StarDatabase:
    """A star-schema database: one fact table plus its dimension tables."""

    def __init__(self, schema: StarSchema, fact: Table, dimensions: Mapping[str, Table]):
        self.schema = schema
        self.fact = fact
        self.dimensions: dict[str, Table] = dict(dimensions)
        self._validate()
        # Warm the content-fingerprint memo while the instance is being born
        # (construction already scans every FK column): the cache layer can
        # then namespace this database without adding a hashing stall to the
        # first query's latency.
        self.cache_fingerprint(refresh=True)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.fact.name != self.schema.fact.name:
            raise SchemaError(
                f"fact table name {self.fact.name!r} does not match schema "
                f"{self.schema.fact.name!r}"
            )
        missing = set(self.schema.dimension_names) - set(self.dimensions)
        if missing:
            raise SchemaError(f"missing dimension tables: {sorted(missing)}")
        for dim_name, fk in self.schema.foreign_keys.items():
            if fk.fact_column not in self.fact:
                raise SchemaError(
                    f"fact table lacks foreign-key column {fk.fact_column!r} "
                    f"for dimension {dim_name!r}"
                )
            codes = self.fact.codes(fk.fact_column)
            dim_rows = self.dimensions[dim_name].num_rows
            if codes.size and (codes.min() < 0 or codes.max() >= dim_rows):
                raise SchemaError(
                    f"foreign-key column {fk.fact_column!r} references rows outside "
                    f"dimension {dim_name!r} (which has {dim_rows} rows)"
                )
        for edge in self.schema.snowflake_edges:
            child = self.dimensions[edge.child_table]
            parent = self.dimensions[edge.parent_table]
            if edge.child_column not in child:
                raise SchemaError(
                    f"snowflake child {edge.child_table!r} lacks column "
                    f"{edge.child_column!r}"
                )
            codes = child.codes(edge.child_column)
            if codes.size and (codes.min() < 0 or codes.max() >= parent.num_rows):
                raise SchemaError(
                    f"snowflake column {edge.child_table}.{edge.child_column} "
                    f"references rows outside {edge.parent_table!r}"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_fact_rows(self) -> int:
        return self.fact.num_rows

    @property
    def size(self) -> int:
        """Total number of tuples in the instance (``N = |D_s|``)."""
        return self.fact.num_rows + sum(t.num_rows for t in self.dimensions.values())

    def dimension(self, name: str) -> Table:
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(
                f"database has no dimension table {name!r}; "
                f"available: {sorted(self.dimensions)}"
            ) from None

    def table(self, name: str) -> Table:
        if name == self.fact.name:
            return self.fact
        return self.dimension(name)

    def fact_foreign_key_codes(self, dimension_name: str) -> np.ndarray:
        """Fact-table foreign-key codes (dimension row positions) for a dimension."""
        fk = self.schema.foreign_key_for(dimension_name)
        return self.fact.codes(fk.fact_column)

    def is_direct_dimension(self, table_name: str) -> bool:
        """Whether ``table_name`` is a dimension directly referenced by the fact
        table (as opposed to an outer snowflake table or the fact table itself)."""
        return table_name in self.schema.foreign_keys

    def cache_fingerprint(self, refresh: bool = False) -> str:
        """The content-derived cache namespace of this instance.

        Delegates to :func:`repro.db.cache.fingerprints.database_fingerprint`:
        a digest over every table's content plus the join structure,
        deterministic across processes and memoized per instance.  Pass
        ``refresh=True`` after an in-place mutation so the new content
        hashes to a fresh namespace (see
        :meth:`repro.db.engine.ExecutionEngine.invalidate`).
        """
        from repro.db.cache.fingerprints import database_fingerprint

        return database_fingerprint(self, refresh=refresh)

    # ------------------------------------------------------------------
    # snowflake traversal
    # ------------------------------------------------------------------
    def _child_edge(self, parent_table: str):
        for edge in self.schema.snowflake_edges:
            if edge.parent_table == parent_table:
                return edge
        return None

    def resolve_to_direct_dimension(
        self, table_name: str, row_mask: np.ndarray
    ) -> tuple[str, np.ndarray]:
        """Push a row mask from an outer (snowflaked) dimension to a direct one.

        If ``table_name`` is directly referenced by the fact table the mask is
        returned unchanged.  Otherwise the snowflake foreign keys are followed
        child-ward (e.g. a mask over ``Month`` rows becomes a mask over
        ``Date`` rows) until a direct dimension is reached.
        """
        current_table = table_name
        current_mask = np.asarray(row_mask, dtype=bool)
        visited = set()
        while current_table not in self.schema.foreign_keys:
            if current_table in visited:
                raise SchemaError(f"snowflake cycle detected at table {current_table!r}")
            visited.add(current_table)
            edge = self._child_edge(current_table)
            if edge is None:
                raise SchemaError(
                    f"table {current_table!r} is neither a direct dimension nor a "
                    f"snowflake parent"
                )
            child = self.dimension(edge.child_table)
            child_codes = child.codes(edge.child_column)
            current_mask = current_mask[child_codes]
            current_table = edge.child_table
        return current_table, current_mask

    # ------------------------------------------------------------------
    # dimension → fact navigation
    # ------------------------------------------------------------------
    def dimension_mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean mask over the rows of the predicate's (possibly outer) table."""
        table = self.table(predicate.table)
        return predicate.evaluate(table)

    def fact_mask_for_dimension_mask(
        self, dimension_name: str, dimension_mask: np.ndarray
    ) -> np.ndarray:
        """Translate a dimension-row mask into a fact-row mask via the FK."""
        codes = self.fact_foreign_key_codes(dimension_name)
        return np.asarray(dimension_mask, dtype=bool)[codes]

    def fact_mask_for_predicate(self, predicate: Predicate) -> np.ndarray:
        """Boolean fact-row mask selecting rows whose joined tuple satisfies
        ``predicate``.

        Handles predicates on direct dimensions, on snowflaked dimensions and
        on fact-table attributes uniformly.
        """
        if predicate.table == self.fact.name:
            return predicate.evaluate(self.fact)
        mask = self.dimension_mask(predicate)
        direct_name, direct_mask = self.resolve_to_direct_dimension(predicate.table, mask)
        return self.fact_mask_for_dimension_mask(direct_name, direct_mask)

    # ------------------------------------------------------------------
    # fan-out statistics (for LS / TM / R2T calibration)
    # ------------------------------------------------------------------
    def fan_out(
        self, dimension_name: str, fact_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Number of (selected) fact tuples referencing each dimension key.

        Parameters
        ----------
        dimension_name:
            A dimension directly referenced by the fact table.
        fact_mask:
            Optional boolean mask restricting which fact rows are counted
            (e.g. the rows satisfying the query's other predicates).
        """
        codes = self.fact_foreign_key_codes(dimension_name)
        if fact_mask is not None:
            codes = codes[np.asarray(fact_mask, dtype=bool)]
        dim_rows = self.dimension(dimension_name).num_rows
        return np.bincount(codes, minlength=dim_rows)

    def max_fan_out(
        self, dimension_name: str, fact_mask: Optional[np.ndarray] = None
    ) -> int:
        """Maximum fan-out of any key of ``dimension_name`` (the local sensitivity
        of a star-join count w.r.t. that private dimension)."""
        counts = self.fan_out(dimension_name, fact_mask)
        return int(counts.max()) if counts.size else 0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = {name: table.num_rows for name, table in self.dimensions.items()}
        return (
            f"StarDatabase(fact={self.fact.name!r} rows={self.fact.num_rows}, "
            f"dimensions={dims})"
        )
