"""Wire protocol of the online query-serving subsystem.

The protocol is deliberately minimal: newline-delimited JSON objects
("JSON lines") over a stream connection.  Every request is one object with
an ``op`` field (``ping`` / ``register`` / ``query`` / ``budget`` /
``stats`` / ``telemetry`` / ``health`` / ``shutdown``) plus op-specific
fields, and every response is one
object with ``ok`` — ``{"ok": true, "result": {...}}`` on success,
``{"ok": false, "error": {"code": ..., "message": ..., ...}}`` on failure.
Requests may carry an ``id`` which the response echoes, so a client can
pipeline requests over one connection.

Failures are *structured*: the server never leaks a traceback to an analyst.
:class:`ServingError` carries a machine-readable code from :data:`ERROR_CODES`
(most importantly ``budget_exhausted``, the ledger's hard refusal) and a
details mapping that round-trips through :meth:`ServingError.to_payload` /
:meth:`ServingError.from_payload` — the client re-raises the server's exact
refusal, remaining budget included.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.exceptions import ReproError

__all__ = [
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "ServingError",
    "decode_line",
    "encode_message",
    "error_response",
    "ok_response",
]

#: Bumped when the wire format changes incompatibly; ``ping`` reports it.
PROTOCOL_VERSION = 1

#: The machine-readable error codes a response may carry.
ERROR_CODES = (
    "bad_request",        # malformed JSON, missing/invalid fields
    "unknown_op",         # unrecognised "op"
    "unknown_database",   # "database" names nothing registered
    "already_registered", # register with a conflicting spec under a used name
    "query_error",        # SQL / query spec failed to parse or resolve
    "unsupported",        # the mechanism cannot answer this query type
    "budget_exhausted",   # the ledger refused admission
    "overloaded",         # admission queue full; retry after retry_after_ms
    "internal",           # unexpected server-side failure
    "shard_unavailable",  # fleet router could not reach the analyst's shard
)


class ServingError(ReproError):
    """A structured serving failure (refusals, parse errors, bad requests).

    Parameters
    ----------
    code:
        One of :data:`ERROR_CODES`.
    message:
        Human-readable explanation.
    details:
        Optional JSON-serialisable extras (e.g. the ledger refusal includes
        ``remaining_epsilon`` so the analyst can re-plan without another
        round-trip).
    """

    def __init__(self, code: str, message: str, **details: Any):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serving error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = details

    def to_payload(self) -> dict:
        payload = {"code": self.code, "message": self.message}
        payload.update(self.details)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ServingError":
        payload = dict(payload)
        code = payload.pop("code", "internal")
        if code not in ERROR_CODES:
            code = "internal"
        message = payload.pop("message", "unknown serving error")
        return cls(code, message, **payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServingError({self.code!r}, {self.message!r})"


def encode_message(message: dict) -> bytes:
    """Serialise one protocol object to a single JSON line."""
    return json.dumps(message, separators=(",", ":"), sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line into a protocol object.

    Raises :class:`ServingError` (``bad_request``) on anything that is not a
    single JSON object, so the server can answer garbage input with a
    structured error instead of dropping the connection.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServingError("bad_request", f"request is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ServingError("bad_request", "request must be a JSON object")
    return message


def ok_response(result: dict, request_id: Optional[Any] = None) -> dict:
    response: dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(error: ServingError, request_id: Optional[Any] = None) -> dict:
    response: dict[str, Any] = {"ok": False, "error": error.to_payload()}
    if request_id is not None:
        response["id"] = request_id
    return response
