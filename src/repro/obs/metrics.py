"""Fork-aware metrics: counters, gauges and fixed-bucket latency histograms.

The registry is the process-wide aggregation point for every subsystem's
operational counters.  Two backings exist behind one interface:

* **process-local** (the default): plain Python numbers, cheap enough for
  the engine's per-kernel hot path;
* **fork-shared** (``MetricsRegistry(shared=True)``): instruments named in
  :data:`METRIC_CATALOG` are backed by ``multiprocessing.Value``/``Array``
  created *before* the pool forks — the same pattern the shared and remote
  cache backends use for their hit counters — so ``TrialScheduler`` workers
  increment the parent's memory and one snapshot aggregates the whole run.
  Instruments first touched *after* a fork fall back to process-local
  storage (a child cannot retroactively share memory with its parent),
  which is why the catalog pre-creates every name the instrumentation uses.

Snapshots follow the unified telemetry schema used across the project
(see ``docs/OBSERVABILITY.md``): a mapping with exactly the top-level keys
``counters`` / ``gauges`` / ``histograms`` / ``subsystem``, where histogram
entries carry cumulative bucket counts plus interpolated p50/p95/p99
summaries.  :func:`render_prometheus` flattens a snapshot into
Prometheus-style exposition text for the ``telemetry`` wire ops.

Like the active cache backend and the warming queue, one registry is
*active* per process (:func:`active_registry`); instrumentation sites
always write somewhere, so there is no "is telemetry on?" branching on hot
paths — installing a shared registry merely redirects the writes.
"""

from __future__ import annotations

import multiprocessing
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "UNIFIED_KEYS",
    "active_registry",
    "registry_scope",
    "render_prometheus",
    "set_active_registry",
    "unified_snapshot",
]

#: Upper bucket bounds (seconds) for latency histograms: ~log-spaced from
#: 100µs to 10s, matching the range serving requests actually span.  The
#: implicit final bucket catches everything slower.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Every instrument name the built-in instrumentation touches.  A shared
#: registry pre-creates these so fork workers inherit the shared memory;
#: the full meaning of each metric is catalogued in docs/OBSERVABILITY.md.
METRIC_CATALOG: dict[str, tuple[str, ...]] = {
    "counters": (
        "engine_cache_hits_total",
        "engine_cache_misses_total",
        "engine_cache_puts_total",
        "executor_queries_total",
        "executor_cold_queries_total",
        "warming_replayed_total",
        "serving_requests_total",
        "serving_overload_refusals_total",
        "serving_slow_queries_total",
        "cache_remote_roundtrips_total",
        "traces_spans_total",
    ),
    "gauges": (
        "serving_execution_ewma_seconds",
        "serving_retry_after_ms",
    ),
    "histograms": (
        "executor_execute_seconds",
        "serving_request_seconds",
        "serving_queue_wait_seconds",
        "warming_replay_seconds",
    ),
}

#: The exact top-level keys of a unified telemetry snapshot.
UNIFIED_KEYS: tuple[str, ...] = ("counters", "gauges", "histograms", "subsystem")


class Counter:
    """A monotonically increasing integer (process-local backing)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class SharedCounter:
    """A fork-inherited counter backed by ``multiprocessing.Value``."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = multiprocessing.Value("Q", 0)

    def inc(self, amount: int = 1) -> None:
        with self._value.get_lock():
            self._value.value += amount

    @property
    def value(self) -> int:
        return int(self._value.value)


class Gauge:
    """A float that goes up and down (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class SharedGauge:
    """A fork-inherited gauge backed by ``multiprocessing.Value``."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = multiprocessing.Value("d", 0.0)

    def set(self, value: float) -> None:
        with self._value.get_lock():
            self._value.value = float(value)

    @property
    def value(self) -> float:
        return float(self._value.value)


def _percentile(quantile: float, bounds: Sequence[float], counts: Sequence[int]) -> float:
    """Interpolated quantile from cumulative-style bucket counts.

    ``counts`` has one entry per finite bound plus the overflow bucket.
    Within the located bucket the value is linearly interpolated between
    the bucket's bounds; the overflow bucket reports its lower bound (the
    largest finite bound — the histogram cannot resolve beyond it).
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = quantile * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        lower = bounds[index - 1] if index > 0 else 0.0
        if index >= len(bounds):  # overflow bucket
            return float(bounds[-1])
        upper = bounds[index]
        if cumulative + count >= rank:
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += count
    return float(bounds[-1])


class Histogram:
    """Fixed-bucket latency histogram (process-local backing)."""

    __slots__ = ("name", "bounds", "_counts", "_sum")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value

    # -- snapshot ------------------------------------------------------
    def _raw(self) -> tuple[list[int], float]:
        return list(self._counts), self._sum

    def summary(self) -> dict:
        counts, total = self._raw()
        observations = sum(counts)
        buckets = {f"{bound:g}": count for bound, count in zip(self.bounds, counts)}
        buckets["+Inf"] = counts[-1]
        return {
            "count": observations,
            "sum_s": round(total, 9),
            "p50_s": round(_percentile(0.50, self.bounds, counts), 9),
            "p95_s": round(_percentile(0.95, self.bounds, counts), 9),
            "p99_s": round(_percentile(0.99, self.bounds, counts), 9),
            "buckets": buckets,
        }


class SharedHistogram(Histogram):
    """A fork-inherited histogram: bucket counts in a ``multiprocessing.Array``,
    the running sum in a ``Value`` (one lock guards both)."""

    __slots__ = ("_lock",)

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, buckets)
        self._counts = multiprocessing.Array("Q", len(self.bounds) + 1)
        self._sum = multiprocessing.Value("d", 0.0)
        self._lock = self._sum.get_lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum.value += value

    def _raw(self) -> tuple[list[int], float]:
        with self._lock:
            return list(self._counts), float(self._sum.value)


class MetricsRegistry:
    """Named counters, gauges and histograms with one snapshot schema.

    ``shared=True`` pre-creates every :data:`METRIC_CATALOG` instrument with
    fork-inherited backing; install such a registry *before* the worker pool
    forks (``evaluation_session`` does) and all workers aggregate into it.
    """

    def __init__(self, shared: bool = False):
        self.shared = bool(shared)
        self._counters: dict[str, "Counter | SharedCounter"] = {}
        self._gauges: dict[str, "Gauge | SharedGauge"] = {}
        self._histograms: dict[str, Histogram] = {}
        if self.shared:
            for name in METRIC_CATALOG["counters"]:
                self._counters[name] = SharedCounter(name)
            for name in METRIC_CATALOG["gauges"]:
                self._gauges[name] = SharedGauge(name)
            for name in METRIC_CATALOG["histograms"]:
                self._histograms[name] = SharedHistogram(name)

    # -- instrument access (create on first use) -----------------------
    def counter(self, name: str) -> "Counter | SharedCounter":
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> "Gauge | SharedGauge":
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms.setdefault(name, Histogram(name, buckets))
        return instrument

    # -- snapshots -----------------------------------------------------
    def snapshot(self, subsystem: Optional[dict] = None) -> dict:
        """The registry's state in the unified telemetry schema."""
        return unified_snapshot(
            counters={name: c.value for name, c in sorted(self._counters.items())},
            gauges={name: g.value for name, g in sorted(self._gauges.items())},
            histograms={name: h.summary() for name, h in sorted(self._histograms.items())},
            subsystem=subsystem,
        )

    def reset(self) -> None:
        """Drop every instrument (tests; not used on live paths)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        if self.shared:
            self.__init__(shared=True)  # re-create the shared catalog


class _NullInstrument:
    """Absorbs writes; reads as zero.  Used to measure instrumentation cost."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0

    def summary(self) -> dict:
        return {"count": 0, "sum_s": 0.0, "p50_s": 0.0, "p95_s": 0.0,
                "p99_s": 0.0, "buckets": {"+Inf": 0}}


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing — the *uninstrumented*
    baseline of the ``telemetry_overhead`` bench, never installed in
    production paths."""

    def __init__(self):
        super().__init__(shared=False)
        self._null = _NullInstrument("null")

    def counter(self, name: str):  # type: ignore[override]
        return self._null

    def gauge(self, name: str):  # type: ignore[override]
        return self._null

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return self._null

    def snapshot(self, subsystem: Optional[dict] = None) -> dict:
        return unified_snapshot(subsystem=subsystem)


def unified_snapshot(
    counters: Optional[dict] = None,
    gauges: Optional[dict] = None,
    histograms: Optional[dict] = None,
    subsystem: Optional[dict] = None,
) -> dict:
    """Build a telemetry snapshot with the unified top-level schema.

    Every ``stats()``-producing subsystem funnels through this so the shape
    (:data:`UNIFIED_KEYS`, in order) is identical everywhere — the
    conformance suite asserts it across backends and servers.
    """
    return {
        "counters": dict(counters or {}),
        "gauges": dict(gauges or {}),
        "histograms": dict(histograms or {}),
        "subsystem": dict(subsystem or {}),
    }


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Flatten a unified snapshot into Prometheus exposition text.

    Nested unified snapshots under ``subsystem`` (e.g. the serving server
    embeds its cache backend's) are flattened with the subsystem path as a
    name prefix; non-numeric subsystem fields are skipped — the JSON half
    of the ``telemetry`` op carries them.
    """
    lines: list[str] = []

    def emit(snap: dict, path: str) -> None:
        for name, value in sorted(snap.get("counters", {}).items()):
            metric = _sanitize(f"{path}_{name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {int(value)}")
        for name, value in sorted(snap.get("gauges", {}).items()):
            metric = _sanitize(f"{path}_{name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(value):g}")
        for name, summary in sorted(snap.get("histograms", {}).items()):
            metric = _sanitize(f"{path}_{name}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in summary.get("buckets", {}).items():
                cumulative += int(count)
                lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{metric}_sum {float(summary.get('sum_s', 0.0)):g}")
            lines.append(f"{metric}_count {int(summary.get('count', 0))}")
        subsystem = snap.get("subsystem", {})
        for name, value in sorted(subsystem.items()):
            if isinstance(value, dict) and set(UNIFIED_KEYS).issubset(value):
                emit(value, f"{path}_{_sanitize(name)}")
            elif isinstance(value, bool):
                pass  # booleans are JSON-side state, not metrics
            elif isinstance(value, (int, float)):
                metric = _sanitize(f"{path}_{name}")
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {float(value):g}")

    emit(snapshot, prefix)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the process-wide active registry (mirrors the active-backend plumbing)
# ----------------------------------------------------------------------
_DEFAULT: Optional[MetricsRegistry] = None
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> MetricsRegistry:
    """The registry instrumentation currently writes to.

    Unlike the warming queue there is no "off" state: with nothing
    installed a lazily created process-local registry absorbs the writes,
    so call sites never branch.
    """
    global _DEFAULT
    if _ACTIVE is not None:
        return _ACTIVE
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT


def set_active_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` process-wide (``None`` restores the lazy local
    default); returns the previously installed registry."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, registry
    return previous


class registry_scope:
    """``with registry_scope(registry):`` — install, restore on exit."""

    def __init__(self, registry: Optional[MetricsRegistry]):
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> Optional[MetricsRegistry]:
        self._previous = set_active_registry(self.registry)
        return self.registry

    def __exit__(self, *_exc) -> None:
        set_active_registry(self._previous)
