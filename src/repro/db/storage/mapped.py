"""The memory-mapped on-disk column layout and its JSON manifest.

Layout of a spilled database (one directory per database)::

    <root>/
        manifest.json            # schema, dtypes, domains, digests
        <table>/<column>.npy     # one standard .npy file per column

The manifest carries everything needed to attach the database without
touching the column bytes: the full star schema (attribute domains included),
every column's dtype and row count, a per-table content digest computed at
spill time, and the database's cache fingerprint.  Attaching therefore costs
a JSON parse — no column scan, no re-hash — and an attached database lands in
the *same* cache namespace as its in-memory twin, so warm caches are shared
across storage modes and across processes (see ``docs/STORAGE.md`` and
``docs/CACHE.md``).

Two read paths, matching :class:`~repro.db.storage.base.ColumnStore`:
whole-column access returns a lazy read-only ``numpy.memmap`` (nothing is
mapped until a column is first used), while :meth:`MappedColumnStore.read_chunk`
does a positioned ``np.fromfile`` read with no persistent mapping at all —
the path the chunked engine kernels stream a large fact table through under
a hard address-space cap.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

import numpy as np

from repro.db.domains import AttributeDomain
from repro.db.schema import ForeignKey, SnowflakeEdge, StarSchema, TableSchema
from repro.db.storage.base import ColumnStore
from repro.exceptions import SchemaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import StarDatabase

__all__ = ["MANIFEST_NAME", "MappedColumnStore", "attach_database", "spill_database"]

MANIFEST_NAME = "manifest.json"
_FORMAT = "repro-columnar"
_VERSION = 1


# ----------------------------------------------------------------------
# schema / domain (de)serialisation
# ----------------------------------------------------------------------
def _domain_to_json(domain: Optional[AttributeDomain]) -> Optional[dict]:
    if domain is None:
        return None
    for value in domain.values:
        if not isinstance(value, (str, int, float)) or isinstance(value, bool):
            raise SchemaError(
                f"domain {domain.name!r} holds value {value!r} of type "
                f"{type(value).__name__}, which the mapped layout cannot "
                "serialise; mapped storage supports str/int/float domain values"
            )
    return {"name": domain.name, "values": list(domain.values)}


def _domain_from_json(data: Optional[dict]) -> Optional[AttributeDomain]:
    if data is None:
        return None
    return AttributeDomain(name=data["name"], values=tuple(data["values"]))


def _table_schema_to_json(table: TableSchema) -> dict:
    return {
        "name": table.name,
        "key": table.key,
        "attributes": {
            name: _domain_to_json(domain) for name, domain in table.attributes.items()
        },
        "measures": list(table.measures),
    }


def _table_schema_from_json(data: dict) -> TableSchema:
    return TableSchema(
        name=data["name"],
        key=data["key"],
        attributes={
            name: _domain_from_json(spec) for name, spec in data["attributes"].items()
        },
        measures=tuple(data["measures"]),
    )


def _schema_to_json(schema: StarSchema) -> dict:
    return {
        "fact": _table_schema_to_json(schema.fact),
        "dimensions": [
            _table_schema_to_json(dimension) for dimension in schema.dimensions.values()
        ],
        "foreign_keys": [
            {
                "fact_column": fk.fact_column,
                "dimension_table": fk.dimension_table,
                "dimension_key": fk.dimension_key,
            }
            for fk in schema.foreign_keys.values()
        ],
        "snowflake_edges": [
            {
                "child_table": edge.child_table,
                "child_column": edge.child_column,
                "parent_table": edge.parent_table,
                "parent_key": edge.parent_key,
            }
            for edge in schema.snowflake_edges
        ],
    }


def _schema_from_json(data: dict) -> StarSchema:
    return StarSchema(
        fact=_table_schema_from_json(data["fact"]),
        dimensions=[_table_schema_from_json(entry) for entry in data["dimensions"]],
        foreign_keys=[ForeignKey(**entry) for entry in data["foreign_keys"]],
        snowflake_edges=[SnowflakeEdge(**entry) for entry in data["snowflake_edges"]],
    )


# ----------------------------------------------------------------------
# the mapped store
# ----------------------------------------------------------------------
class MappedColumnStore(ColumnStore):
    """Read-only columns backed by per-column ``.npy`` files.

    Construction reads nothing but the manifest metadata it is handed; each
    column's file is opened lazily.  ``array`` maps the file read-only,
    ``read_chunk`` streams it without mapping.
    """

    kind = "mapped"

    def __init__(self, root: Path, table_meta: dict):
        self._root = Path(root)
        self._meta: dict[str, dict] = {
            column["name"]: column for column in table_meta["columns"]
        }
        if not self._meta:
            raise SchemaError("mapped table manifest lists no columns")
        self._num_rows = int(table_meta["num_rows"])
        self._digest = table_meta.get("digest")
        self._arrays: dict[str, np.ndarray] = {}
        #: Byte offset of each column's data block, parsed from the .npy
        #: header on the first chunked read of that column.
        self._data_offsets: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _column_meta(self, name: str) -> dict:
        try:
            return self._meta[name]
        except KeyError:
            raise self._unknown_column(name) from None

    def _path(self, name: str) -> Path:
        return self._root / self._column_meta(name)["file"]

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._meta)

    def dtype(self, name: str) -> np.dtype:
        return np.dtype(self._column_meta(name)["dtype"])

    def digest(self) -> Optional[str]:
        return self._digest

    # ------------------------------------------------------------------
    def array(self, name: str) -> np.ndarray:
        """The whole column as a lazy read-only memmap (cached per column)."""
        array = self._arrays.get(name)
        if array is None:
            path = self._path(name)
            array = np.load(path, mmap_mode="r", allow_pickle=False)
            if array.shape != (self._num_rows,) or array.dtype != self.dtype(name):
                raise SchemaError(
                    f"mapped column file {path} does not match its manifest "
                    f"(shape {array.shape}, dtype {array.dtype}; expected "
                    f"({self._num_rows},), {self.dtype(name)})"
                )
            self._arrays[name] = array
        return array

    def _data_offset(self, name: str) -> int:
        """Offset of the raw data block inside the column's ``.npy`` file."""
        offset = self._data_offsets.get(name)
        if offset is None:
            path = self._path(name)
            with open(path, "rb") as handle:
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:  # pragma: no cover - we only ever write 1.0/2.0
                    raise SchemaError(f"unsupported .npy version {version} in {path}")
                if fortran or shape != (self._num_rows,) or dtype != self.dtype(name):
                    raise SchemaError(
                        f"mapped column file {path} does not match its manifest "
                        f"(shape {shape}, dtype {dtype}; expected "
                        f"({self._num_rows},), {self.dtype(name)})"
                    )
                offset = handle.tell()
            self._data_offsets[name] = offset
        return offset

    def read_chunk(self, name: str, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` via a positioned read — no persistent map.

        This is the streaming path: the chunk buffer is the only memory the
        read costs, so kernels iterating a large fact column stay within a
        hard address-space cap no matter the file size.
        """
        start = max(0, int(start))
        stop = min(int(stop), self._num_rows)
        dtype = self.dtype(name)
        if stop <= start:
            return np.empty(0, dtype=dtype)
        offset = self._data_offset(name) + start * dtype.itemsize
        return np.fromfile(self._path(name), dtype=dtype, count=stop - start, offset=offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedColumnStore(root={str(self._root)!r}, rows={self._num_rows}, "
            f"columns={self.column_names})"
        )


# ----------------------------------------------------------------------
# spill / attach
# ----------------------------------------------------------------------
def _manifest_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    return path if path.name == MANIFEST_NAME else path / MANIFEST_NAME


def _spill_table(table, directory: Path) -> dict:
    """Write one table's columns under ``directory`` and return its manifest."""
    table_dir = directory / table.name
    table_dir.mkdir(parents=True, exist_ok=True)
    columns = []
    for name in table.column_names:
        column = table.column(name)
        values = np.ascontiguousarray(column.values)
        if values.dtype.hasobject:
            raise SchemaError(
                f"column {table.name}.{name} has object dtype; the mapped "
                "layout stores numeric arrays only"
            )
        np.save(table_dir / f"{name}.npy", values, allow_pickle=False)
        columns.append(
            {
                "name": name,
                "dtype": values.dtype.str,
                "file": f"{table.name}/{name}.npy",
                "domain": _domain_to_json(column.domain),
            }
        )
    return {
        "num_rows": int(table.num_rows),
        "digest": table.content_digest(),
        "columns": columns,
    }


def spill_database(
    database: "StarDatabase", path: Union[str, Path], overwrite: bool = False
) -> Path:
    """Write ``database`` in the mapped layout under directory ``path``.

    Returns the manifest path.  If a manifest already exists there, the spill
    is idempotent: a manifest whose fingerprint matches this database is
    reused as-is (so concurrent workers spilling the same instance race
    benignly), any other content is refused unless ``overwrite=True``.

    The directory is populated under a temporary sibling name and renamed
    into place, so a crashed spill never leaves a half-written manifest
    behind and the loser of a spill race simply discards its copy.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    fingerprint = database.cache_fingerprint()
    if manifest_path.exists():
        if not overwrite:
            try:
                existing = json.loads(manifest_path.read_text())
            except (OSError, ValueError):
                existing = {}
            if existing.get("fingerprint") == fingerprint:
                return manifest_path
            raise SchemaError(
                f"{path} already holds a different spilled database; pass "
                "overwrite=True to replace it"
            )
        shutil.rmtree(path)

    tmp = path.parent / f".{path.name}.spill-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        tables = {database.fact.name: _spill_table(database.fact, tmp)}
        for name in sorted(database.dimensions):
            tables[name] = _spill_table(database.dimensions[name], tmp)
        manifest = {
            "format": _FORMAT,
            "version": _VERSION,
            "fact": database.fact.name,
            "fingerprint": fingerprint,
            "schema": _schema_to_json(database.schema),
            "tables": tables,
        }
        (tmp / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))
        try:
            os.rename(tmp, path)
        except OSError:
            # Lost a race (or the directory appeared meanwhile): keep the
            # winner's copy if it is the same content, refuse otherwise.
            if not manifest_path.exists():
                raise
            existing = json.loads(manifest_path.read_text())
            if existing.get("fingerprint") != fingerprint:
                raise SchemaError(
                    f"{path} already holds a different spilled database; pass "
                    "overwrite=True to replace it"
                ) from None
    finally:
        if tmp.exists():
            shutil.rmtree(tmp)
    return manifest_path


def _load_manifest(path: Union[str, Path]) -> tuple[Path, dict]:
    manifest_path = _manifest_path(path)
    if not manifest_path.is_file():
        raise SchemaError(f"no mapped-database manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as error:
        raise SchemaError(f"corrupt manifest {manifest_path}: {error}") from None
    if manifest.get("format") != _FORMAT or int(manifest.get("version", 0)) != _VERSION:
        raise SchemaError(
            f"{manifest_path} is not a {_FORMAT} v{_VERSION} manifest "
            f"(format={manifest.get('format')!r}, version={manifest.get('version')!r})"
        )
    return manifest_path, manifest


def _attach_table(root: Path, name: str, manifest: dict):
    from repro.db.table import Table

    table_meta = manifest["tables"][name]
    store = MappedColumnStore(root, table_meta)
    domains: dict[str, Any] = {}
    for column in table_meta["columns"]:
        domain = _domain_from_json(column.get("domain"))
        if domain is not None:
            domains[column["name"]] = domain
    return Table.from_store(name, store, domains=domains, digest=table_meta.get("digest"))


def attach_database(path: Union[str, Path]) -> "StarDatabase":
    """Attach a spilled database read-only from its directory or manifest path.

    Attaching is cheap and scan-free: the schema comes from the manifest,
    every table serves the spill-time content digest, and the foreign-key
    validation already performed at spill time is trusted rather than re-run
    (the files are opened read-only, so the invariants cannot have drifted).
    Safe to call from many processes at once — fork workers and serving
    processes attach the same files and share the page cache.
    """
    from repro.db.database import StarDatabase

    manifest_path, manifest = _load_manifest(path)
    root = manifest_path.parent
    schema = _schema_from_json(manifest["schema"])
    fact = _attach_table(root, manifest["fact"], manifest)
    dimensions = {
        name: _attach_table(root, name, manifest)
        for name in manifest["tables"]
        if name != manifest["fact"]
    }
    database = StarDatabase(schema=schema, fact=fact, dimensions=dimensions, validate=False)
    fingerprint = manifest.get("fingerprint")
    if fingerprint and database.cache_fingerprint() != fingerprint:
        raise SchemaError(
            f"manifest {manifest_path} fingerprint does not match its table "
            "digests; the spill directory is corrupt or was hand-edited"
        )
    return database
