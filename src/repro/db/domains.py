"""Finite, ordered attribute domains.

The Predicate Mechanism (paper Section 5.2, Algorithm 2) perturbs predicates
*inside the ordinal domain of each attribute*: a point constraint ``a = v``
is moved to a nearby domain value, and a range constraint ``a ∈ [l, r]`` has
its endpoints moved.  The scale of the Laplace noise is the domain size
``|dom(a)|``.  :class:`AttributeDomain` is the codec between attribute values
and their ordinal codes ``0 .. |dom(a)| - 1`` that makes this possible for
both categorical attributes (regions, categories, brands) and integer
attributes (years, node identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.exceptions import DomainError

__all__ = ["AttributeDomain"]


@dataclass(frozen=True)
class AttributeDomain:
    """An ordered, finite domain for a single attribute.

    Parameters
    ----------
    name:
        Attribute name (``"region"``, ``"year"``, ...).
    values:
        Ordered tuple of the domain values.  Order matters: range predicates
        and predicate perturbation operate on the positions in this tuple.
    """

    name: str
    values: tuple[Any, ...]
    _index: dict[Any, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.values) == 0:
            raise DomainError(f"domain {self.name!r} must not be empty")
        index = {}
        for position, value in enumerate(self.values):
            if value in index:
                raise DomainError(
                    f"domain {self.name!r} contains duplicate value {value!r}"
                )
            index[value] = position
        object.__setattr__(self, "_index", index)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, name: str, values: Iterable[Any]) -> "AttributeDomain":
        """Build a domain from an iterable of (already ordered) values."""
        return cls(name=name, values=tuple(values))

    @classmethod
    def integer_range(cls, name: str, low: int, high: int) -> "AttributeDomain":
        """Build an integer domain covering ``low .. high`` inclusive."""
        if high < low:
            raise DomainError(f"integer domain {name!r}: high < low ({high} < {low})")
        return cls(name=name, values=tuple(range(int(low), int(high) + 1)))

    @classmethod
    def categorical(cls, name: str, labels: Sequence[str]) -> "AttributeDomain":
        """Build a categorical domain from a sequence of labels."""
        return cls(name=name, values=tuple(labels))

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of values in the domain, i.e. ``|dom(a)|``."""
        return len(self.values)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, value: Any) -> bool:
        return value in self._index

    def __iter__(self):
        return iter(self.values)

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def encode(self, value: Any) -> int:
        """Return the ordinal code of ``value``.

        Raises :class:`~repro.exceptions.DomainError` for unknown values.
        """
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(
                f"value {value!r} is not in domain {self.name!r} "
                f"(size {self.size})"
            ) from None

    def decode(self, code: int) -> Any:
        """Return the value at ordinal position ``code``."""
        if not 0 <= int(code) < self.size:
            raise DomainError(
                f"code {code} is outside domain {self.name!r} of size {self.size}"
            )
        return self.values[int(code)]

    def encode_array(self, values: Iterable[Any]) -> np.ndarray:
        """Vectorised :meth:`encode` returning an ``int64`` array."""
        return np.asarray([self.encode(v) for v in values], dtype=np.int64)

    def decode_array(self, codes: Iterable[int]) -> list[Any]:
        """Vectorised :meth:`decode`."""
        return [self.decode(int(c)) for c in codes]

    # ------------------------------------------------------------------
    # clamping (used by predicate perturbation)
    # ------------------------------------------------------------------
    def clamp_code(self, code: float) -> int:
        """Round ``code`` to the nearest integer and clamp into the domain.

        The paper observes that "when PM perturbs the predicate, its
        perturbation result is still within the domain value range"; this is
        the operation that enforces it.
        """
        rounded = int(np.rint(code))
        return min(max(rounded, 0), self.size - 1)

    def clamp_value(self, code: float) -> Any:
        """Clamp a (possibly fractional, out-of-range) code and decode it."""
        return self.decode(self.clamp_code(code))

    # ------------------------------------------------------------------
    # helpers for range predicates
    # ------------------------------------------------------------------
    def code_interval(self, low: Any, high: Any) -> tuple[int, int]:
        """Return the ordinal interval ``(encode(low), encode(high))``.

        Raises :class:`~repro.exceptions.DomainError` if the interval is
        reversed.
        """
        lo = self.encode(low)
        hi = self.encode(high)
        if lo > hi:
            raise DomainError(
                f"range [{low!r}, {high!r}] is reversed in domain {self.name!r}"
            )
        return lo, hi

    def slice_values(self, low_code: int, high_code: int) -> tuple[Any, ...]:
        """Return domain values with codes in ``[low_code, high_code]``."""
        if low_code > high_code:
            return ()
        low_code = max(0, int(low_code))
        high_code = min(self.size - 1, int(high_code))
        return self.values[low_code : high_code + 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self.values[:4])
        if self.size > 4:
            preview += ", ..."
        return f"AttributeDomain({self.name!r}, size={self.size}, [{preview}])"
