"""Snowflake queries under DP (paper Section 5.3, Figure 10).

Snowflake schemas normalise dimensions into hierarchies — here ``Date`` keeps
only its year and delegates the month to a separate ``Month`` table.  The
example shows that the Predicate Mechanism answers a query whose predicate
lives on the outer ``Month`` table exactly as it answers star queries: the
month-range predicate is perturbed inside its 12-value domain and the noisy
query is pushed through the Date → Month foreign key.

Run it with ``python examples/snowflake_queries.py``.
"""

from __future__ import annotations

import numpy as np

from repro import SnowflakeConfig, SnowflakeGenerator, SnowflakePredicateMechanism
from repro.db.executor import QueryExecutor
from repro.evaluation.metrics import relative_error
from repro.evaluation.reporting import format_table
from repro.workloads.tpch_queries import snowflake_queries

EPSILONS = (0.1, 0.5, 1.0)
TRIALS = 5


def main() -> None:
    print("Generating a snowflake instance (SSB with Date normalised into Month)...")
    database = SnowflakeGenerator(
        SnowflakeConfig(scale_factor=1.0, rows_per_scale_factor=240_000, seed=31)
    ).build()
    print(f"  Month dimension: {database.dimension('Month').num_rows} rows")
    print(f"  Date dimension:  {database.dimension('Date').num_rows} rows")

    executor = QueryExecutor(database)
    rows = []
    for query in snowflake_queries():
        exact = executor.execute(query)
        print(f"\n{query.name}: {query.describe()}")
        print(f"  exact answer: {exact:,.0f}")
        for epsilon in EPSILONS:
            errors = []
            for seed in range(TRIALS):
                mechanism = SnowflakePredicateMechanism(epsilon=epsilon, rng=seed)
                noisy = mechanism.answer_value(database, query)
                errors.append(relative_error(exact, noisy))
            rows.append([query.name, epsilon, f"{np.mean(errors):.1f}%"])

    print("\nPM error on snowflake queries:")
    print(format_table(["query", "epsilon", "relative error"], rows))


if __name__ == "__main__":
    main()
