"""Ablation benchmarks for the design decisions called out in DESIGN.md.

Three ablations:

* **Range-perturbation mode** — the width-preserving ``shift`` default versus
  the literal Algorithm-2 ``endpoints`` variant, on the range-dominated query
  Qc4.  This quantifies the interpretation decision documented in
  ``repro.core.pma``.
* **WD strategy choice** — distinct-rows / identity / hierarchical strategy
  matrices on the W2 workload.
* **Truncation threshold** — the bias/variance trade-off of the TM baseline as
  the threshold grows (Section 4's discussion).
"""

import numpy as np
import pytest

from repro.core.matrix_decomposition import MatrixDecomposition
from repro.core.predicate_mechanism import PredicateMechanism
from repro.core.workload import WorkloadDecomposition, answer_workload_exact
from repro.baselines import TruncationMechanism
from repro.datagen.ssb import generate_ssb
from repro.db.executor import QueryExecutor
from repro.dp.neighboring import PrivacyScenario
from repro.evaluation.metrics import relative_error, workload_relative_error
from repro.evaluation.reporting import ExperimentResult
from repro.workloads.ssb_queries import ssb_query
from repro.workloads.workload_matrices import workload_w2


@pytest.fixture(scope="module")
def ablation_database():
    return generate_ssb(scale_factor=1.0, seed=99, rows_per_scale_factor=120_000)


def test_range_mode_ablation(benchmark, ablation_database, record_result):
    """Shift-mode PM should dominate endpoint-mode PM on narrow-range queries."""
    database = ablation_database
    executor = QueryExecutor(database)
    query = ssb_query("Qc4")
    exact = executor.execute(query)

    def run() -> ExperimentResult:
        result = ExperimentResult(title="Ablation: PMA range perturbation mode on Qc4")
        for mode in ("shift", "endpoints"):
            for epsilon in (0.1, 0.5, 1.0):
                errors = [
                    relative_error(
                        exact,
                        PredicateMechanism(
                            epsilon=epsilon, rng=seed, range_mode=mode
                        ).answer_value(database, query),
                    )
                    for seed in range(5)
                ]
                result.add_row(
                    range_mode=mode, epsilon=epsilon, relative_error_pct=float(np.mean(errors))
                )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result, "ablation_range_mode")

    shift = np.mean([r["relative_error_pct"] for r in result.filter(range_mode="shift").rows])
    endpoints = np.mean(
        [r["relative_error_pct"] for r in result.filter(range_mode="endpoints").rows]
    )
    assert shift < endpoints


def test_wd_strategy_ablation(benchmark, ablation_database, record_result):
    """Compare the three strategy families on the cumulative workload W2."""
    database = ablation_database
    queries = workload_w2()
    exact = answer_workload_exact(database, queries)

    def run() -> ExperimentResult:
        result = ExperimentResult(title="Ablation: WD strategy matrices on W2")
        for strategy in MatrixDecomposition.CANDIDATES:
            errors = []
            for seed in range(5):
                mechanism = WorkloadDecomposition(
                    epsilon=0.5,
                    rng=seed,
                    decomposer=MatrixDecomposition(candidates=(strategy,)),
                )
                answer = mechanism.answer(database, queries)
                errors.append(workload_relative_error(exact, answer.values))
            result.add_row(strategy=strategy, relative_error_pct=float(np.mean(errors)))
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result, "ablation_wd_strategy")
    assert len(result) == len(MatrixDecomposition.CANDIDATES)
    assert all(row["relative_error_pct"] >= 0 for row in result.rows)


def test_truncation_threshold_ablation(benchmark, ablation_database, record_result):
    """TM's bias falls and its noise rises as the threshold grows (Section 4)."""
    database = ablation_database
    scenario = PrivacyScenario.dimensions("Customer", "Supplier", "Part")
    executor = QueryExecutor(database)
    query = ssb_query("Qc2")
    exact = executor.execute(query)
    thresholds = (1.0, 4.0, 16.0, 64.0, 256.0)

    def run() -> ExperimentResult:
        result = ExperimentResult(title="Ablation: TM truncation threshold on Qc2")
        for threshold in thresholds:
            mechanism = TruncationMechanism(
                epsilon=0.5, scenario=scenario, threshold=threshold
            )
            bias = mechanism.truncation_bias(database, query, threshold=threshold)
            errors = [
                relative_error(exact, mechanism.answer_value(database, query, rng=seed))
                for seed in range(5)
            ]
            result.add_row(
                threshold=threshold,
                truncation_bias=bias,
                relative_error_pct=float(np.mean(errors)),
            )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(result, "ablation_tm_threshold")

    biases = [row["truncation_bias"] for row in result.rows]
    assert biases == sorted(biases, reverse=True)
    assert biases[-1] <= biases[0]
