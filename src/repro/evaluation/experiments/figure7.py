"""Figure 7: error of PM, R2T and LS under different data distributions.

The paper regenerates the SSB instance with values following Uniform,
Exponential and Gamma distributions and reports the error of Qc3 (COUNT) and
Qs3 (SUM) across data scales.  The observation to reproduce: PM performs best
on uniform data and degrades as the data becomes more skewed — because PM
answers a *shifted* predicate exactly, its error is exactly the difference in
mass between the true and the shifted predicate region, which grows with
skew — while the baselines' behaviour is dominated by their noise scales.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "DISTRIBUTIONS", "QUERIES", "MECHANISMS"]

DISTRIBUTIONS = ("uniform", "exponential", "gamma")
QUERIES = ("Qc3", "Qs3")
MECHANISMS = ("PM", "R2T", "LS")


def run(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = DISTRIBUTIONS,
    scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 7 (error under different distributions and scales)."""
    config = config or ExperimentConfig()
    schema = ssb_schema()
    result = ExperimentResult(
        title="Figure 7: error level for different data distributions (Qc3 / Qs3)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    from repro.datagen.distributions import MEASURE_DISTRIBUTIONS

    for distribution in distributions:
        # Key-only distributions (e.g. Zipf) fall back to uniform measures.
        measure_distribution = distribution if distribution in MEASURE_DISTRIBUTIONS else "uniform"
        for scale in scales:
            database = build_ssb_database(
                config,
                scale_factor=scale,
                key_distribution=distribution,
                measure_distribution=measure_distribution,
                seed_offset=cell_seed(distribution, scale, modulus=1000),
            )
            executor = QueryExecutor(database)
            for query_name in query_names:
                query = ssb_query(query_name, schema)
                exact = executor.execute(query)
                for mechanism_name in mechanisms:
                    mechanism = make_star_mechanism(
                        mechanism_name, epsilon, scenario=config.scenario
                    )
                    evaluation = evaluate_mechanism(
                        mechanism,
                        database,
                        query,
                        trials=config.trials,
                        rng=config.seed + cell_seed(distribution, scale, query_name, mechanism_name),
                        exact_answer=exact,
                    )
                    result.add_row(
                        distribution=distribution,
                        scale=scale,
                        query=query_name,
                        mechanism=mechanism_name,
                        relative_error_pct=(
                            None if evaluation.unsupported else evaluation.mean_relative_error
                        ),
                    )
    return result
