"""Key and measure samplers with controllable skew.

The paper studies how PM behaves as the data distribution departs from
uniform (Figures 7 and 11): it constructs SSB instances whose values follow
Uniform, Exponential, Gamma and Gaussian-mixture distributions.  This module
provides the corresponding samplers in two flavours:

* :class:`KeySampler` — draws *ordinal codes* in ``[0, size)``; used for the
  fact table's foreign keys and dictionary-encoded dimension attributes, which
  is what drives the distribution dependence of COUNT queries.
* :class:`MeasureSampler` — draws continuous measure values; drives the
  distribution dependence of SUM queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import stats

from repro.exceptions import DataGenerationError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "KeySampler",
    "MeasureSampler",
    "key_sampler",
    "measure_sampler",
    "GaussianMixtureSpec",
    "KEY_DISTRIBUTIONS",
    "MEASURE_DISTRIBUTIONS",
]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """A two-component Gaussian mixture used by the Figure 11 experiments.

    ``means`` / ``stds`` are expressed as fractions of the domain size (or of
    the measure range), so the same spec is reusable across differently sized
    domains; ``weights`` are the mixture weights.
    """

    means: tuple[float, float]
    stds: tuple[float, float]
    weights: tuple[float, float] = (0.5, 0.5)

    def __post_init__(self) -> None:
        if len(self.means) != 2 or len(self.stds) != 2 or len(self.weights) != 2:
            raise DataGenerationError("Gaussian mixtures here use exactly two components")
        if any(s <= 0 for s in self.stds):
            raise DataGenerationError("mixture standard deviations must be positive")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise DataGenerationError("mixture weights must sum to one")


@dataclass(frozen=True)
class _SamplingTables:
    """Per-domain-size tables a :class:`KeySampler` caches and reuses:
    the normalised probability vector, its CDF, and whether the shape is
    flat (which routes draws through the uniform integer sampler).  The
    Walker alias tables live in a separate lazy cache — see
    :meth:`KeySampler._alias`."""

    probabilities: np.ndarray
    cdf: np.ndarray
    uniform: bool


def _build_alias_tables(probabilities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Walker's alias tables for ``probabilities`` (accept thresholds, aliases)."""
    size = probabilities.size
    scaled = (probabilities * size).tolist()
    accept = np.ones(size, dtype=np.float64)
    alias = np.arange(size, dtype=np.int64)
    small = [i for i, value in enumerate(scaled) if value < 1.0]
    large = [i for i, value in enumerate(scaled) if value >= 1.0]
    while small and large:
        lo = small.pop()
        hi = large.pop()
        accept[lo] = scaled[lo]
        alias[lo] = hi
        scaled[hi] -= 1.0 - scaled[lo]
        (small if scaled[hi] < 1.0 else large).append(hi)
    # Leftovers are 1.0 up to rounding; their accept threshold stays 1.
    return accept, alias


class KeySampler:
    """Samples ordinal codes in ``[0, size)`` according to a fixed shape.

    The probability vector, its CDF and the alias tables are built once per
    domain size and cached on the sampler — rebuilding and renormalising them
    on every ``sample`` call made the skew experiments' data generation cost
    grow with the number of draws instead of the number of distinct domains.
    """

    def __init__(self, name: str, probability_fn: Callable[[int], np.ndarray]):
        self.name = name
        self._probability_fn = probability_fn
        self._tables: dict[int, _SamplingTables] = {}
        self._alias_tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def tables(self, size: int) -> _SamplingTables:
        """The cached sampling tables for ``size`` codes (built on first use)."""
        if size <= 0:
            raise DataGenerationError("domain size must be positive")
        tables = self._tables.get(size)
        if tables is None:
            probabilities = np.asarray(self._probability_fn(size), dtype=np.float64)
            probabilities = np.clip(probabilities, 1e-12, None)
            probabilities = probabilities / probabilities.sum()
            cdf = np.cumsum(probabilities)
            cdf[-1] = 1.0  # guard float rounding so every u < 1 lands in-domain
            uniform = bool(
                probabilities.size
                and probabilities.max() - probabilities.min() < 1e-15
            )
            for array in (probabilities, cdf):
                array.setflags(write=False)
            tables = _SamplingTables(probabilities=probabilities, cdf=cdf, uniform=uniform)
            self._tables[size] = tables
        return tables

    def _alias(self, size: int) -> tuple[np.ndarray, np.ndarray]:
        """The cached Walker alias tables (accept thresholds, aliases) for
        ``size`` codes.  They answer a draw with two uniform variates and two
        table gathers — O(1) per code instead of the O(log size)
        cache-unfriendly binary search of ``searchsorted`` (or of
        ``Generator.choice``, which also rebuilds its CDF on every call) —
        and cost an O(size) Python construction, so they are built lazily on
        the first non-uniform draw."""
        entry = self._alias_tables.get(size)
        if entry is None:
            accept, alias = _build_alias_tables(self.tables(size).probabilities)
            accept.setflags(write=False)
            alias.setflags(write=False)
            entry = (accept, alias)
            self._alias_tables[size] = entry
        return entry

    def probabilities(self, size: int) -> np.ndarray:
        """The probability vector over ``size`` codes (cached, read-only)."""
        return self.tables(size).probabilities

    def cdf(self, size: int) -> np.ndarray:
        """The cumulative distribution over ``size`` codes (cached, read-only)."""
        return self.tables(size).cdf

    def sample(self, size: int, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` codes from ``[0, size)``.

        A flat vector is the common case (every figure except the skew
        studies) and routes through the uniform integer sampler; non-uniform
        shapes draw from the cached alias tables.
        """
        generator = ensure_rng(rng)
        tables = self.tables(size)
        if tables.uniform:
            return generator.integers(0, size, size=count, dtype=np.int64)
        accept, alias = self._alias(size)
        codes = generator.integers(0, size, size=count, dtype=np.int64)
        acceptance = generator.random(count)
        return np.where(acceptance < accept[codes], codes, alias[codes])

    def sample_via_cdf(self, size: int, count: int, rng: RngLike = None) -> np.ndarray:
        """Inverse-CDF draw: ``searchsorted(cdf, random(count))``.

        Same distribution as :meth:`sample` (different variates for the same
        seed); kept as the reference implementation the alias tables are
        validated against, and for callers that need monotone inverse-CDF
        sampling (e.g. common random numbers across distributions).
        """
        generator = ensure_rng(rng)
        cdf = self.tables(size).cdf
        return np.searchsorted(cdf, generator.random(count), side="right").astype(np.int64)


class MeasureSampler:
    """Samples continuous measure values in a configurable positive range.

    ``support`` is the fixed reference interval of the *raw* draws (analytic,
    e.g. a 99.9% quantile range).  Rescaling by it makes the mapping to
    ``[low, high]`` a per-value function: the distribution of the output does
    not depend on the batch size, and two half-size draws equal one full
    draw.  (Rescaling by each batch's observed extremes — the previous
    behaviour — made the measure distribution a function of ``count``.)
    A sampler built without a declared support falls back to the legacy
    batch rescale.
    """

    def __init__(
        self,
        name: str,
        draw_fn: Callable[[np.random.Generator, int], np.ndarray],
        support: Optional[tuple[float, float]] = None,
    ):
        if support is not None:
            lo, hi = (float(support[0]), float(support[1]))
            if not (hi > lo):
                raise DataGenerationError("measure support must satisfy high > low")
            support = (lo, hi)
        self.name = name
        self.support = support
        self._draw_fn = draw_fn

    def sample(self, count: int, rng: RngLike = None, low: float = 1.0, high: float = 100.0) -> np.ndarray:
        """Draw ``count`` values, rescaled into ``[low, high]``."""
        if high <= low:
            raise DataGenerationError("measure range must satisfy high > low")
        generator = ensure_rng(rng)
        raw = np.asarray(self._draw_fn(generator, count), dtype=np.float64)
        if raw.size == 0:
            return raw
        if self.support is not None:
            lo, hi = self.support
            normalised = np.clip((raw - lo) / (hi - lo), 0.0, 1.0)
        else:
            spread = raw.max() - raw.min()
            if spread == 0:
                # Degenerate batch (constant draw): map to the midpoint
                # rather than dividing by zero.
                normalised = np.full_like(raw, 0.5)
            else:
                normalised = (raw - raw.min()) / spread
        return low + normalised * (high - low)


# ----------------------------------------------------------------------
# key-distribution shapes (probability over ordinal positions)
# ----------------------------------------------------------------------
def _uniform_probabilities(size: int) -> np.ndarray:
    return np.full(size, 1.0 / size)


def _exponential_probabilities(size: int, scale_fraction: float = 0.25) -> np.ndarray:
    positions = np.arange(size)
    return np.exp(-positions / max(size * scale_fraction, 1.0))


def _gamma_probabilities(size: int, shape: float = 2.0, scale_fraction: float = 0.15) -> np.ndarray:
    positions = np.arange(size) + 0.5
    return stats.gamma.pdf(positions, a=shape, scale=max(size * scale_fraction, 1.0))


def _zipf_probabilities(size: int, exponent: float = 1.2) -> np.ndarray:
    positions = np.arange(1, size + 1, dtype=np.float64)
    return positions**-exponent


def _gaussian_mixture_probabilities(size: int, spec: GaussianMixtureSpec) -> np.ndarray:
    positions = np.arange(size, dtype=np.float64)
    density = np.zeros(size, dtype=np.float64)
    for weight, mean_fraction, std_fraction in zip(spec.weights, spec.means, spec.stds):
        mean = mean_fraction * size
        std = max(std_fraction * size, 0.5)
        density += weight * stats.norm.pdf(positions, loc=mean, scale=std)
    return density


KEY_DISTRIBUTIONS: dict[str, Callable[..., KeySampler]] = {}


def _register_key(name: str, builder: Callable[..., KeySampler]) -> None:
    KEY_DISTRIBUTIONS[name] = builder


_register_key("uniform", lambda: KeySampler("uniform", _uniform_probabilities))
_register_key(
    "exponential",
    lambda scale_fraction=0.25: KeySampler(
        "exponential", lambda size: _exponential_probabilities(size, scale_fraction)
    ),
)
_register_key(
    "gamma",
    lambda shape=2.0, scale_fraction=0.15: KeySampler(
        "gamma", lambda size: _gamma_probabilities(size, shape, scale_fraction)
    ),
)
_register_key(
    "zipf",
    lambda exponent=1.2: KeySampler("zipf", lambda size: _zipf_probabilities(size, exponent)),
)
_register_key(
    "gaussian_mixture",
    lambda spec=GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1)): KeySampler(
        "gaussian_mixture", lambda size: _gaussian_mixture_probabilities(size, spec)
    ),
)


#: Memoized sampler instances, so repeated database builds (trial after
#: trial, figure after figure) share one sampler — and therefore one set of
#: cached per-size sampling tables.  Samplers are stateless (the generator is
#: passed per draw), so sharing is safe.
_KEY_SAMPLER_CACHE: dict = {}


def key_sampler(name: str, **params) -> KeySampler:
    """Build (or reuse) a :class:`KeySampler` by name (``uniform`` /
    ``exponential`` / ``gamma`` / ``zipf`` / ``gaussian_mixture``)."""
    try:
        builder = KEY_DISTRIBUTIONS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown key distribution {name!r}; available: {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    try:
        cache_key = (name, tuple(sorted(params.items())))
        hash(cache_key)
    except TypeError:
        return builder(**params)
    sampler = _KEY_SAMPLER_CACHE.get(cache_key)
    if sampler is None:
        sampler = _KEY_SAMPLER_CACHE.setdefault(cache_key, builder(**params))
    return sampler


# ----------------------------------------------------------------------
# measure-distribution shapes (continuous draws, rescaled by the caller)
# ----------------------------------------------------------------------
MEASURE_DISTRIBUTIONS: dict[str, Callable[..., MeasureSampler]] = {}


def _register_measure(name: str, builder: Callable[..., MeasureSampler]) -> None:
    MEASURE_DISTRIBUTIONS[name] = builder


# Each raw distribution declares a fixed reference interval: exact bounds
# where the support is bounded, a 99.9% analytic quantile (or ±4σ for the
# mixtures) where it is not.  Values beyond the interval clip to its edges.
_register_measure(
    "uniform",
    lambda: MeasureSampler(
        "uniform", lambda rng, n: rng.uniform(0.0, 1.0, size=n), support=(0.0, 1.0)
    ),
)
_register_measure(
    "exponential",
    lambda scale=1.0: MeasureSampler(
        "exponential",
        lambda rng, n: rng.exponential(scale, size=n),
        support=(0.0, float(stats.expon.ppf(0.999, scale=scale))),
    ),
)
_register_measure(
    "gamma",
    lambda shape=2.0, scale=1.0: MeasureSampler(
        "gamma",
        lambda rng, n: rng.gamma(shape, scale, size=n),
        support=(0.0, float(stats.gamma.ppf(0.999, a=shape, scale=scale))),
    ),
)
_register_measure(
    "gaussian_mixture",
    lambda spec=GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1)): MeasureSampler(
        "gaussian_mixture",
        lambda rng, n, _spec=spec: _draw_gaussian_mixture(rng, n, _spec),
        support=_mixture_support(spec),
    ),
)


def _mixture_support(spec: GaussianMixtureSpec) -> tuple[float, float]:
    """±4σ envelope of the mixture's components (≥ 99.99% of each)."""
    lows = [mean - 4.0 * std for mean, std in zip(spec.means, spec.stds)]
    highs = [mean + 4.0 * std for mean, std in zip(spec.means, spec.stds)]
    return (min(lows), max(highs))


def _draw_gaussian_mixture(
    rng: np.random.Generator, count: int, spec: GaussianMixtureSpec
) -> np.ndarray:
    # A two-outcome categorical draw: one uniform vector against the first
    # weight beats ``Generator.choice(2, p=...)`` by an order of magnitude.
    first = rng.random(count) < spec.weights[0]
    means = np.where(first, spec.means[0], spec.means[1])
    stds = np.where(first, spec.stds[0], spec.stds[1])
    return rng.normal(means, stds)


def measure_sampler(name: str, **params) -> MeasureSampler:
    """Build a :class:`MeasureSampler` by name."""
    try:
        builder = MEASURE_DISTRIBUTIONS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown measure distribution {name!r}; available: {sorted(MEASURE_DISTRIBUTIONS)}"
        ) from None
    return builder(**params)
