"""The query workloads used in the paper's evaluation (Section 6, Appendix A).

* :mod:`~repro.workloads.ssb_queries` — the nine SSB star-join queries
  (Qc1–Qc4, Qs2–Qs4, Qg2, Qg4).
* :mod:`~repro.workloads.workload_matrices` — the workload matrices W1 and W2
  and their conversion to star-join query lists.
* :mod:`~repro.workloads.tpch_queries` — the snowflake queries Qtc and Qts.
* :mod:`~repro.workloads.kstar_queries` — the k-star counting queries Q2*, Q3*.
"""

from repro.workloads.ssb_queries import (
    SSB_QUERY_NAMES,
    all_ssb_queries,
    count_queries,
    groupby_queries,
    ssb_query,
    sum_queries,
)
from repro.workloads.workload_matrices import (
    W1_MATRIX,
    W2_MATRIX,
    workload_queries_from_matrix,
    workload_w1,
    workload_w2,
)
from repro.workloads.tpch_queries import snowflake_queries, tpch_count_query, tpch_sum_query
from repro.workloads.kstar_queries import kstar_query, q2star, q3star

__all__ = [
    "SSB_QUERY_NAMES",
    "ssb_query",
    "all_ssb_queries",
    "count_queries",
    "sum_queries",
    "groupby_queries",
    "W1_MATRIX",
    "W2_MATRIX",
    "workload_queries_from_matrix",
    "workload_w1",
    "workload_w2",
    "snowflake_queries",
    "tpch_count_query",
    "tpch_sum_query",
    "kstar_query",
    "q2star",
    "q3star",
]
