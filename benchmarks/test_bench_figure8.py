"""Benchmark: regenerate Figure 8 (error vs predicate domain size).

Expected shape (paper Figure 8): PM's error grows only mildly as the product
of the predicate domains grows (the perturbation stays inside the domain),
and it remains orders of magnitude below R2T and LS throughout the sweep.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure8


def test_figure8(benchmark, full_config, record_result):
    result = benchmark.pedantic(lambda: figure8.run(full_config), rounds=1, iterations=1)
    record_result(result, "figure8")

    labels = [label for label, _ in figure8.DOMAIN_COMBINATIONS]
    pm_errors = [np.mean(errors_of(result, mechanism="PM", domain_sizes=label)) for label in labels]
    ls_errors = [np.mean(errors_of(result, mechanism="LS", domain_sizes=label)) for label in labels]

    # PM is far below LS on every non-trivial combination; on the smallest
    # domain (a very unselective query) LS's fan-out noise can be negligible
    # relative to the large answer, so that cell is exempt.
    for pm, ls in zip(pm_errors[1:], ls_errors[1:]):
        assert pm < ls
    assert np.mean(pm_errors) < np.mean(ls_errors)

    # PM error grows only mildly with the domain size and never approaches the
    # orders-of-magnitude blow-up of the baselines.
    assert max(pm_errors) < max(ls_errors)
    assert max(pm_errors) < 300.0
