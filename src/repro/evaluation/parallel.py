"""Batched, process-parallel evaluation of experiment cells.

The experiment drivers answer every (mechanism, query, ε) cell over repeated
trials.  With the shared :class:`~repro.db.engine.ExecutionEngine` the
per-trial query work is cheap, so the harness bottleneck is the serial cell
loop itself.  This module fans cells out over a ``ProcessPoolExecutor``:

* :class:`TrialScheduler` maps a picklable cell function over a cell list
  and returns results **in input order** — parallelism never reorders rows.
* Determinism comes from the seeding scheme, not from scheduling: each cell
  carries its full label, and the cell function derives the cell's
  :class:`~numpy.random.SeedSequence` with
  :func:`~repro.evaluation.experiments.common.cell_stream` — a pure function
  of ``(master seed, label)``.  All trials of a cell run inside one
  :func:`~repro.evaluation.runner.evaluate_mechanism` call from generators
  split off that sequence, so ``jobs=1`` and ``jobs=N`` produce identical
  numbers.
* Workers warm up their own databases and engine caches once per database
  and reuse them across every cell of that database:
  :func:`resolve_database` memoizes ``(builder, args)`` per process.  On
  platforms whose process start method is ``fork`` (Linux, the CI platform)
  workers inherit, through copy-on-write memory, whatever the parent had
  built by the time the pool forked: with a transient per-experiment
  scheduler that is the experiment's freshly warmed database and engine
  caches; with the run-wide session pool (which forks during the *first*
  experiment's map) it covers the first experiment only, and later
  experiments' databases are rebuilt once per worker — sharing their
  *cached artefacts* across processes is what ``--cache-backend shared``
  is for.
* One pool can serve a whole CLI run: :func:`evaluation_session` installs a
  run-wide cache backend (see :mod:`repro.db.cache`) and a *persistent*
  :class:`TrialScheduler` that every driver picks up through
  :func:`scheduler_for`, so ``repro.evaluation.cli`` with several experiments
  forks exactly one worker pool instead of one per experiment.  Under the
  shared backend the workers of that one pool keep exchanging selection
  masks, cubes and exact answers with each other (and with the parent's
  per-experiment warm-up) for the entire run.

Cell functions must be importable module-level callables (the pool pickles
them by qualified name); drivers bind their configuration with
``functools.partial``.
"""

from __future__ import annotations

import functools
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.db.cache import make_backend, set_active_backend
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, cell_stream
from repro.obs.metrics import MetricsRegistry, set_active_registry
from repro.obs.trace import (
    Tracer,
    active_tracer,
    resume_span,
    set_active_tracer,
    wire_context,
)
from repro.evaluation.runner import (
    EvaluationResult,
    evaluate_kstar_mechanism,
    evaluate_mechanism,
    make_kstar_mechanism,
    make_star_mechanism,
)
from repro.graph.kstar import kstar_count

__all__ = [
    "TrialScheduler",
    "StarCell",
    "KStarCell",
    "run_star_cell",
    "run_kstar_cell",
    "resolve_database",
    "clear_worker_cache",
    "evaluation_session",
    "scheduler_for",
    "active_scheduler",
]


# ----------------------------------------------------------------------
# per-process database / warm-engine cache
# ----------------------------------------------------------------------
#: Databases (and anything else a cell function wants to pay for once per
#: process) keyed by the builder's qualified name and its pickled arguments.
#: Under the ``fork`` start method a pre-populated parent cache is inherited
#: by every worker, so the parent can warm it before the pool is created.
#: Bounded like ``common._DATABASE_CACHE`` (oldest entry evicted) so a
#: many-database sweep — figure7 alone builds 12 instances — cannot pin
#: every instance it ever touched for the life of the process.
_WORKER_CACHE: dict = {}
_WORKER_CACHE_MAX = 8


def clear_worker_cache() -> None:
    """Drop this process's memoized databases (frees memory between suites)."""
    _WORKER_CACHE.clear()


def resolve_database(builder: Callable, args: tuple):
    """Build (or reuse) the database described by ``(builder, args)``.

    The result is memoized per process and its
    :class:`~repro.db.engine.ExecutionEngine` is attached on first build, so
    all cells of the same database share one set of selection/cube caches —
    each worker pays them once.

    With mapped storage (``ExperimentConfig.storage == "mapped"``) the
    builder resolves to a read-only attachment of the instance's on-disk
    manifest rather than re-generating arrays: the driver spills the instance
    before scheduling, every fork worker attaches the same files, and the
    fact table's pages are shared through the OS page cache instead of being
    duplicated per process (see ``docs/STORAGE.md``).
    """
    key = (builder.__module__, builder.__qualname__, pickle.dumps(args))
    database = _WORKER_CACHE.get(key)
    if database is None:
        database = builder(*args)
        if hasattr(database, "fact"):  # star/snowflake databases have engines
            ExecutionEngine.for_database(database)
        while len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[key] = database
    return database


# ----------------------------------------------------------------------
# cell descriptions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StarCell:
    """One (mechanism, query, ε) cell of a star-join experiment.

    Everything is picklable and declarative: the query and database are
    described by module-level builder callables plus positional arguments,
    resolved inside the worker; ``stream`` is the full cell label the
    per-cell seed stream is derived from.
    """

    mechanism: str
    epsilon: float
    query_builder: Callable
    query_args: tuple
    database_builder: Callable
    database_args: tuple
    stream: tuple
    mechanism_kwargs: tuple = ()


@dataclass(frozen=True)
class KStarCell:
    """One (mechanism, query, ε) cell of a k-star (graph) experiment."""

    mechanism: str
    epsilon: float
    query_builder: Callable  # called with the resolved graph
    database_builder: Callable
    database_args: tuple
    stream: tuple
    mechanism_kwargs: tuple = ()


def run_star_cell(config: ExperimentConfig, cell: StarCell) -> EvaluationResult:
    """Evaluate one star-join cell (importable worker entry point)."""
    database = resolve_database(cell.database_builder, cell.database_args)
    query = cell.query_builder(*cell.query_args)
    mechanism = make_star_mechanism(
        cell.mechanism,
        cell.epsilon,
        scenario=config.scenario,
        **dict(cell.mechanism_kwargs),
    )
    # Engine-cached by query fingerprint: computed once per (database, query)
    # per process, shared by every mechanism and ε of the cell's query.
    exact = QueryExecutor(database).execute(query)
    return evaluate_mechanism(
        mechanism,
        database,
        query,
        trials=config.trials,
        rng=cell_stream(config.seed, *cell.stream),
        exact_answer=exact,
    )


def run_kstar_cell(config: ExperimentConfig, cell: KStarCell) -> EvaluationResult:
    """Evaluate one k-star cell (importable worker entry point)."""
    graph = resolve_database(cell.database_builder, cell.database_args)
    query = cell.query_builder(graph)
    mechanism = make_kstar_mechanism(
        cell.mechanism, cell.epsilon, **dict(cell.mechanism_kwargs)
    )
    exact = kstar_count(graph, query)  # O(1) after the graph's first count
    return evaluate_kstar_mechanism(
        mechanism,
        graph,
        query,
        trials=config.trials,
        rng=cell_stream(config.seed, *cell.stream),
        exact_answer=exact,
    )


def _run_traced_cell(fn: Callable, context: Optional[dict], cell: Any):
    """Worker-side wrapper re-parenting a cell under the driver's span.

    ``context`` is the parent's :func:`wire_context`; the fork-inherited
    module-global tracer writes the worker's spans into the same JSONL
    file, so the merged trace stays connected across the pool boundary.
    Module-level so the pool can pickle it by qualified name.
    """
    with resume_span(context, "runner.cell", kind=type(cell).__name__) as current:
        result = fn(cell)
        if current is not None:
            mechanism = getattr(cell, "mechanism", None)
            if mechanism is not None:
                current.set(mechanism=mechanism, epsilon=getattr(cell, "epsilon", None))
        return result


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
def _fork_context():
    # ``fork`` lets workers inherit the parent's already-built databases,
    # warm engine caches and the active cache backend; fall back to the
    # platform default elsewhere.
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


class TrialScheduler:
    """Maps cell functions over worker processes, preserving input order.

    ``jobs=1`` (the default) runs every cell in-process — byte-for-byte the
    serial behaviour, with no pool or pickling involved.  ``jobs>1`` fans
    cells out over a ``ProcessPoolExecutor``; chunks keep cells of the same
    database together (drivers emit them contiguously) without starving load
    balancing.

    ``persistent=False`` (the default for ad-hoc use) creates a pool per
    :meth:`map` call and tears it down after, exactly the pre-session
    behaviour.  ``persistent=True`` — what :func:`evaluation_session`
    installs — creates the pool lazily on first use and keeps it (and the
    workers' memoized databases) alive across every ``map`` of the run until
    :meth:`close`.  Scheduling never affects results either way: determinism
    comes from the per-cell seed streams.
    """

    #: Process-wide count of worker pools ever created (tests and benchmarks
    #: assert on deltas of this to pin the one-pool-per-run property).
    pools_created: int = 0

    def __init__(self, jobs: int = 1, persistent: bool = False):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.persistent = persistent
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            TrialScheduler.pools_created += 1
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=_fork_context()
            )
        return self._pool

    def map(self, fn: Callable[[Any], Any], cells: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every cell; results come back in input order.

        An interrupt (``KeyboardInterrupt`` / ``SystemExit``) while cells are
        in flight force-terminates the pool instead of waiting for queued
        work, so Ctrl-C on a long sweep leaves no orphaned workers behind.
        """
        cells = list(cells)
        jobs = min(self.jobs, len(cells))
        if jobs <= 1:
            return [fn(cell) for cell in cells]
        if active_tracer() is not None:
            # Ship the current span's identity with every cell so worker
            # spans re-parent under it (contextvars do not cross fork).
            # Only when tracing: the untraced pool path is unchanged.
            fn = functools.partial(_run_traced_cell, fn, wire_context())
        chunksize = max(1, len(cells) // (self.jobs * 4))
        if self.persistent:
            pool = self._ensure_pool()
            try:
                return list(pool.map(fn, cells, chunksize=chunksize))
            except (KeyboardInterrupt, SystemExit):
                self.terminate()
                raise
        TrialScheduler.pools_created += 1
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=_fork_context())
        try:
            return list(pool.map(fn, cells, chunksize=chunksize))
        except (KeyboardInterrupt, SystemExit):
            self._terminate_pool(pool)
            raise
        finally:
            pool.shutdown(wait=True)

    def close(self) -> None:
        """Shut down the persistent pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def terminate(self) -> None:
        """Forcefully stop the persistent pool (the interrupt path).

        Unlike :meth:`close` this does not wait for queued cells: pending
        futures are cancelled and the worker processes are terminated and
        joined, so an interrupted run (SIGINT on the CLI, a killed serve
        loop) cannot strand workers.  Safe to call when no pool exists, and
        the scheduler remains usable — the next ``map`` forks a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            self._terminate_pool(pool)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)

    def __enter__(self) -> "TrialScheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the run-wide session
# ----------------------------------------------------------------------
#: The scheduler serving the current evaluation session, if one is active.
_ACTIVE_SCHEDULER: Optional[TrialScheduler] = None


def active_scheduler() -> Optional[TrialScheduler]:
    """The session's run-wide scheduler, or ``None`` outside a session."""
    return _ACTIVE_SCHEDULER


def scheduler_for(config: ExperimentConfig) -> TrialScheduler:
    """The scheduler a driver should map its cells over.

    Inside an :func:`evaluation_session` this is the session's single
    persistent scheduler — every experiment of the run shares its pool.
    Outside a session (a driver called directly, e.g. from a notebook or a
    test) it is a transient per-call scheduler with the pre-session
    pool-per-``map`` behaviour, so drivers remain usable standalone.
    """
    if _ACTIVE_SCHEDULER is not None:
        return _ACTIVE_SCHEDULER
    return TrialScheduler(config.jobs)


@contextmanager
def evaluation_session(config: ExperimentConfig) -> Iterator[TrialScheduler]:
    """Run-wide scheduling and caching for one CLI invocation.

    Installs, for the duration of the ``with`` block:

    * the configured cache backend (``config.cache_backend`` /
      ``config.cache_size``) as the process-wide active backend — created
      *before* any pool forks, so a shared backend's manager process and
      counters are inherited by every worker;
    * one persistent :class:`TrialScheduler` that all drivers reached through
      :func:`scheduler_for` share — ``repro.evaluation.cli`` with any number
      of experiments creates exactly one worker pool;
    * a run-wide :class:`~repro.obs.metrics.MetricsRegistry` (fork-shared
      with ``jobs > 1``, so worker increments aggregate into the parent's
      snapshots) and, with ``config.trace_path``, a run-wide tracer whose
      JSONL file collects spans from every process of the run.

    Teardown order matters and is the reverse: the pool is closed first (no
    worker may touch the shared tier afterwards), then the backend is closed
    (shutting down a shared backend's manager process), then the previously
    active backend is restored.  On SIGINT/``SystemExit`` the pool is
    *terminated* instead — queued cells are cancelled and workers are killed
    and joined — so an interrupted run never strands worker processes.
    Sessions may nest; the inner session simply shadows the outer one's
    scheduler and backend until it exits.
    """
    global _ACTIVE_SCHEDULER
    backend = make_backend(
        config.cache_backend,
        config.cache_size,
        url=config.cache_url,
        path=config.cache_path,
        policy=config.cache_policy,
        max_bytes=config.cache_max_bytes,
        replicas=getattr(config, "cache_replicas", 1),
    )
    previous_backend = set_active_backend(backend)
    # Opt-in warm-ahead: the queue is installed before the pool forks so the
    # parent records its own misses; the CLI drains it between experiments.
    previous_queue = None
    if config.warm_ahead:
        from repro.db.cache.warming import WarmingQueue, set_active_queue

        previous_queue = set_active_queue(WarmingQueue())
    # Telemetry, also pre-fork: with jobs > 1 the registry's catalog
    # instruments are backed by fork-inherited shared memory, so worker
    # increments land in the parent's snapshot; the tracer module global is
    # likewise inherited, collecting the whole pool's spans in one file.
    previous_registry = set_active_registry(MetricsRegistry(shared=config.jobs > 1))
    tracer = Tracer(config.trace_path) if config.trace_path else None
    previous_tracer = set_active_tracer(tracer) if tracer is not None else None
    previous_scheduler = _ACTIVE_SCHEDULER
    scheduler = TrialScheduler(config.jobs, persistent=True)
    _ACTIVE_SCHEDULER = scheduler
    interrupted = False
    try:
        yield scheduler
    except (KeyboardInterrupt, SystemExit):
        # Ctrl-C on a CLI run (or a killed serve loop): don't wait for the
        # queued cells — cancel them and terminate the workers so the
        # interrupt leaves no orphaned processes behind.
        interrupted = True
        raise
    finally:
        _ACTIVE_SCHEDULER = previous_scheduler
        if interrupted:
            scheduler.terminate()
        else:
            scheduler.close()
        close = getattr(backend, "close", None)
        if close is not None:
            close()
        set_active_backend(previous_backend)
        if tracer is not None:
            set_active_tracer(previous_tracer)
            tracer.close()
        set_active_registry(previous_registry)
        if config.warm_ahead:
            from repro.db.cache.warming import set_active_queue

            set_active_queue(previous_queue)
