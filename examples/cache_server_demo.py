"""Cache-server smoke: a batch run warms a second, unrelated process.

The end-to-end property this script proves (CI runs it next to the serving
smoke):

1. start a **standalone** cache server process
   (``python -m repro.db.cache.server --path ... --port ...``);
2. run a quick batch evaluation against it from a child process — the run
   pushes its selection masks, cubes and exact answers to the server;
3. run the same workload from a **second, freshly launched** child process
   (no fork relationship with the first) and assert it scores **nonzero
   remote hits** — the content-fingerprint namespaces line up across
   processes — and produces exactly the same rows;
4. restart the server from its persistence file and assert it comes back
   **warm from disk**.

Usage::

    PYTHONPATH=src python examples/cache_server_demo.py          # orchestrate
    PYTHONPATH=src python examples/cache_server_demo.py --role warm --url HOST:PORT

The ``--role`` forms are the child processes the orchestrator spawns; they
are not meant to be run by hand (but nothing breaks if you do).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.db.cache import RemoteCacheBackend, active_backend
from repro.evaluation.experiments import table1
from repro.evaluation.experiments.common import ExperimentConfig
from repro.evaluation.parallel import evaluation_session

QUERIES = ("Qc1", "Qs2")


def _batch_config(url: str) -> ExperimentConfig:
    return ExperimentConfig(
        epsilons=(0.1, 1.0),
        trials=2,
        rows_per_scale_factor=6000,
        seed=11,
        cache_backend="remote",
        cache_url=url,
    )


def run_batch(url: str) -> dict:
    """One quick table1 run through the cache server; returns its evidence."""
    config = _batch_config(url)
    with evaluation_session(config):
        result = table1.run(config, query_names=QUERIES)
        backend = active_backend()
        stats = backend.stats()
        evidence = {
            "rows": [
                {k: v for k, v in row.items() if k != "mean_time_s"}
                for row in result.rows
            ],
            "remote_hits": stats.shared_hits,
            "remote_puts": stats.shared_puts,
            "degraded": backend.degraded,
        }
    return evidence


def child_main(role: str, url: str) -> int:
    evidence = run_batch(url)
    if evidence["degraded"]:
        print(f"{role}: backend degraded — cache server unreachable", file=sys.stderr)
        return 1
    if role == "verify" and evidence["remote_hits"] == 0:
        print("verify: scored zero remote hits — server sharing is broken", file=sys.stderr)
        return 1
    print(json.dumps(evidence))
    return 0


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def _spawn_server(path: Path) -> tuple[subprocess.Popen, str]:
    """Start a server on an ephemeral port; returns (process, host:port).

    Asking the OS for the port (``--port 0``) and parsing the server's own
    startup line avoids the probe-then-bind race a pre-picked free port
    would reopen on a busy CI host.
    """
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.db.cache.server",
            "--path",
            str(path),
            "--port",
            "0",
        ],
        env=os.environ.copy(),
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"cache server exited at startup ({process.returncode})")
        line = process.stdout.readline()
        if line.startswith("cache server on "):
            url = line.removeprefix("cache server on ").split(" ", 1)[0]
            print(line.rstrip())
            return process, url
        time.sleep(0.05)
    process.terminate()
    raise RuntimeError("cache server did not report its port within 30s")


def _run_child(role: str, url: str) -> dict:
    completed = subprocess.run(
        [sys.executable, __file__, "--role", role, "--url", url],
        env=os.environ.copy(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{role} child failed (exit {completed.returncode}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def orchestrate() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cache.db"
        server, url = _spawn_server(path)
        try:
            print(f"[1/4] cache server up on {url} (persisting to {path})")

            warm = _run_child("warm", url)
            print(
                f"[2/4] batch warm run: {warm['remote_puts']} artefacts pushed, "
                f"{warm['remote_hits']} remote hits"
            )
            if warm["remote_puts"] == 0:
                print("warm run pushed nothing to the server", file=sys.stderr)
                return 1

            verify = _run_child("verify", url)
            print(
                f"[3/4] second process: {verify['remote_hits']} remote hits "
                f"(served by the first process's work)"
            )
            if verify["rows"] != warm["rows"]:
                print("rows differ between the two processes", file=sys.stderr)
                return 1
        finally:
            server.terminate()
            server.wait(timeout=30)

        # Restart from the persistence file: the server must come back warm.
        server, url = _spawn_server(path)
        try:
            backend = RemoteCacheBackend(url=url)
            try:
                stats = backend.server_stats()
                entries = stats["loaded_from_disk"] if stats else 0
                if not entries:
                    print("restarted server loaded nothing from disk", file=sys.stderr)
                    return 1
                print(f"[4/4] restarted server warm from disk ({entries} entries)")
            finally:
                backend.close()
        finally:
            server.terminate()
            server.wait(timeout=30)
    print("cache-server smoke OK: cross-process warm hits + warm-from-disk restart")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--role", choices=("warm", "verify"), default=None)
    parser.add_argument("--url", default=None, help="cache server host:port (child roles)")
    args = parser.parse_args()
    if args.role is not None:
        if not args.url:
            parser.error("--role requires --url")
        return child_main(args.role, args.url)
    return orchestrate()


if __name__ == "__main__":
    raise SystemExit(main())
