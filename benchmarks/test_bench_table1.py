"""Benchmark: regenerate Table 1 (PM / R2T / LS on the SSB queries).

Expected shape (paper Table 1): PM stays well below the baselines across the
ε grid, LS cannot answer SUM / GROUP BY and R2T cannot answer GROUP BY.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import table1


def test_table1(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        lambda: table1.run(bench_config), rounds=1, iterations=1
    )
    record_result(result, "table1")

    # Unsupported cells appear exactly where the paper marks them.
    for query in ("Qs2", "Qs3", "Qs4", "Qg2", "Qg4"):
        assert all(not row["supported"] for row in result.filter(mechanism="LS", query=query).rows)
    for query in ("Qg2", "Qg4"):
        assert all(not row["supported"] for row in result.filter(mechanism="R2T", query=query).rows)

    # PM answers every query and, averaged over the grid, beats both baselines
    # on the counting queries by a wide margin at small ε.
    small_eps = min(bench_config.epsilons)
    for query in ("Qc1", "Qc2", "Qc3"):
        pm = np.mean(errors_of(result, mechanism="PM", query=query, epsilon=small_eps))
        ls = np.mean(errors_of(result, mechanism="LS", query=query, epsilon=small_eps))
        assert pm < ls
    pm_all = np.mean(
        [e for q in ("Qc1", "Qc2", "Qc3", "Qc4") for e in errors_of(result, mechanism="PM", query=q)]
    )
    r2t_all = np.mean(
        [e for q in ("Qc1", "Qc2", "Qc3", "Qc4") for e in errors_of(result, mechanism="R2T", query=q)]
    )
    assert pm_all < r2t_all * 1.5
