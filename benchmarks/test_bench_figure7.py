"""Benchmark: regenerate Figure 7 (error under different data distributions).

Expected shape (paper Figure 7): PM does best on uniform data and its error
grows as the data becomes more skewed (Exponential, Gamma), with count
queries affected more strongly than sum queries.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure7


def test_figure7(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        lambda: figure7.run(bench_config, scales=(0.5, 1.0)), rounds=1, iterations=1
    )
    record_result(result, "figure7")

    # The series for all three distributions must be present; the paper's
    # skew ordering (uniform best) is reported in EXPERIMENTS.md — at benchmark
    # scale it is within run-to-run noise, so it is not asserted here.
    for distribution in figure7.DISTRIBUTIONS:
        assert errors_of(result, mechanism="PM", distribution=distribution)

    # PM remains below the baselines on average across the sweep.
    pm_all = np.mean(errors_of(result, mechanism="PM"))
    r2t_all = np.mean(errors_of(result, mechanism="R2T"))
    ls_all = np.mean(errors_of(result, mechanism="LS"))
    assert pm_all < r2t_all
    assert pm_all < ls_all
