"""LM: Laplace output perturbation for star-join queries.

The textbook mechanism of Theorem 3.2: compute the exact answer and add
``Lap(GS_Q / ε)`` noise.  As the paper stresses, this is only applicable when
the global sensitivity is bounded — i.e. the (1, 0)-private scenario where
only the fact table is sensitive (GS = 1 for COUNT, the measure bound for
SUM).  As soon as a dimension table is private, the foreign-key constraints
make GS_Q unbounded and the mechanism refuses to answer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.query import AggregateKind, StarJoinQuery
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.neighboring import PrivacyScenario
from repro.dp.sensitivity import (
    count_query_global_sensitivity,
    sum_query_global_sensitivity,
)
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = ["OutputLaplaceMechanism"]


class OutputLaplaceMechanism:
    """Laplace output perturbation (LM), valid only for (1, 0)-private scenarios."""

    name = "LM"
    supports_count = True
    supports_sum = True
    supports_group_by = True

    def __init__(
        self,
        epsilon: float,
        scenario: Optional[PrivacyScenario] = None,
        measure_bound: Optional[float] = None,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        self.epsilon = float(epsilon)
        self.scenario = scenario or PrivacyScenario.fact_only()
        self.measure_bound = measure_bound
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _sensitivity(
        self, database: StarDatabase, query: StarJoinQuery, engine: ExecutionEngine
    ) -> float:
        if query.kind is AggregateKind.COUNT:
            bound = count_query_global_sensitivity(
                self.scenario.fact_private, self.scenario.private_dimensions
            )
        else:
            measure_bound = self.measure_bound
            if measure_bound is None:
                # A public upper bound on the measure must be supplied for SUM
                # queries; falling back to the observed maximum is flagged as a
                # non-private convenience for experimentation.
                measure_bound = float(
                    np.abs(engine.measure_values(query.aggregate.measure)).max()
                )
            bound = sum_query_global_sensitivity(
                self.scenario.fact_private, self.scenario.private_dimensions, measure_bound
            )
        if not bound.is_bounded:
            raise UnsupportedQueryError(
                "the Laplace output mechanism cannot answer star-join queries with "
                f"private dimension tables: {bound.description}"
            )
        return bound.value

    # ------------------------------------------------------------------
    def answer_value(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ):
        """Answer ``query`` by output perturbation.

        GROUP BY queries are answered by perturbing every group independently
        (parallel composition over the disjoint groups).
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        engine = engine if engine is not None else ExecutionEngine.for_database(database)
        executor = QueryExecutor(database, engine=engine)
        sensitivity = self._sensitivity(database, query, engine)
        mechanism = LaplaceMechanism(sensitivity=sensitivity, epsilon=self.epsilon)
        exact = executor.execute(query)
        if isinstance(exact, GroupedResult):
            noisy_groups = {
                key: mechanism.randomise(value, rng=generator)
                for key, value in exact.groups.items()
            }
            return GroupedResult(keys=exact.keys, groups=noisy_groups)
        return mechanism.randomise(float(exact), rng=generator)
