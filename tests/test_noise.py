"""Tests for the noise primitives (Laplace, Cauchy, geometric)."""

import numpy as np
import pytest

from repro.dp.noise import (
    cauchy_noise,
    cauchy_scale_for_epsilon,
    geometric_noise,
    laplace_noise,
    laplace_scale,
    laplace_variance,
)
from repro.exceptions import PrivacyBudgetError, SensitivityError


class TestLaplace:
    def test_scale(self):
        assert laplace_scale(5.0, 0.5) == 10.0

    def test_variance(self):
        assert laplace_variance(1.0, 1.0) == pytest.approx(2.0)

    def test_scalar_draw_is_float(self):
        value = laplace_noise(1.0, 1.0, rng=1)
        assert isinstance(value, float)

    def test_vector_draw_shape(self):
        values = laplace_noise(1.0, 1.0, size=100, rng=1)
        assert values.shape == (100,)

    def test_zero_sensitivity_is_noiseless(self):
        assert laplace_noise(0.0, 1.0, rng=1) == 0.0
        assert np.all(laplace_noise(0.0, 1.0, size=5, rng=1) == 0.0)

    def test_reproducible_with_seed(self):
        assert laplace_noise(1.0, 1.0, rng=7) == laplace_noise(1.0, 1.0, rng=7)

    def test_empirical_std_matches_theory(self):
        values = laplace_noise(3.0, 0.5, size=200_000, rng=11)
        assert np.std(values) == pytest.approx(np.sqrt(2) * 6.0, rel=0.05)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(PrivacyBudgetError):
            laplace_noise(1.0, 0.0)
        with pytest.raises(PrivacyBudgetError):
            laplace_noise(1.0, -1.0)

    def test_invalid_sensitivity_raises(self):
        with pytest.raises(SensitivityError):
            laplace_noise(-1.0, 1.0)
        with pytest.raises(SensitivityError):
            laplace_noise(float("inf"), 1.0)


class TestCauchy:
    def test_scale_formula(self):
        # beta = eps / (2 (gamma+1)); scale = sensitivity / beta.
        assert cauchy_scale_for_epsilon(2.0, 1.0, gamma=4.0) == pytest.approx(20.0)

    def test_scalar_draw(self):
        assert isinstance(cauchy_noise(1.0, 1.0, rng=1), float)

    def test_vector_draw(self):
        assert cauchy_noise(1.0, 1.0, size=10, rng=1).shape == (10,)

    def test_median_absolute_deviation_scales(self):
        small = np.abs(cauchy_noise(1.0, 1.0, size=100_000, rng=3))
        large = np.abs(cauchy_noise(10.0, 1.0, size=100_000, rng=3))
        assert np.median(large) == pytest.approx(10 * np.median(small), rel=0.1)

    def test_invalid_gamma_raises(self):
        with pytest.raises(SensitivityError):
            cauchy_noise(1.0, 1.0, gamma=0.0)

    def test_zero_sensitivity_is_noiseless(self):
        assert cauchy_noise(0.0, 1.0, rng=1) == 0.0


class TestGeometric:
    def test_integer_output(self):
        value = geometric_noise(1.0, 1.0, rng=5)
        assert isinstance(value, int)

    def test_vector_output_dtype(self):
        values = geometric_noise(1.0, 1.0, size=50, rng=5)
        assert values.dtype == np.int64

    def test_symmetry(self):
        values = geometric_noise(1.0, 0.5, size=200_000, rng=5)
        assert abs(float(np.mean(values))) < 0.05

    def test_larger_epsilon_means_smaller_noise(self):
        loose = np.abs(geometric_noise(1.0, 0.1, size=50_000, rng=5)).mean()
        tight = np.abs(geometric_noise(1.0, 2.0, size=50_000, rng=5)).mean()
        assert tight < loose

    def test_zero_sensitivity_is_noiseless(self):
        assert geometric_noise(0.0, 1.0, rng=1) == 0
