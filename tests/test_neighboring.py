"""Tests for the (a, b)-private neighbouring-instance definitions."""

import numpy as np
import pytest

from repro.db.executor import QueryExecutor
from repro.db.query import StarJoinQuery
from repro.dp.neighboring import NeighborhoodPolicy, PrivacyScenario, generate_neighbor
from repro.exceptions import SchemaError


class TestPrivacyScenario:
    def test_fact_only(self):
        scenario = PrivacyScenario.fact_only()
        assert scenario.a == 1
        assert scenario.b == 0
        assert scenario.label == "(1, 0)-private"

    def test_dimensions(self):
        scenario = PrivacyScenario.dimensions("Customer", "Supplier")
        assert scenario.a == 0
        assert scenario.b == 2

    def test_full(self):
        scenario = PrivacyScenario.full("Customer")
        assert scenario.a == 1
        assert scenario.b == 1

    def test_no_private_table_rejected(self):
        with pytest.raises(SchemaError):
            PrivacyScenario(fact_private=False, private_dimensions=())


class TestFactOnlyNeighbor:
    def test_differs_by_exactly_one_fact_row(self, tiny_db):
        neighbor = generate_neighbor(tiny_db, PrivacyScenario.fact_only(), rng=1)
        assert neighbor.num_fact_rows == tiny_db.num_fact_rows - 1
        assert neighbor.dimension("Color").num_rows == 6
        assert neighbor.dimension("Size").num_rows == 4

    def test_pinned_fact_row(self, tiny_db):
        policy = NeighborhoodPolicy(fact_row=0)
        neighbor = generate_neighbor(tiny_db, PrivacyScenario.fact_only(), policy=policy)
        # Row 0 had amount 1.0; it must be gone.
        assert 1.0 not in list(neighbor.fact.codes("amount"))

    def test_count_changes_by_at_most_one(self, tiny_db):
        query = StarJoinQuery.count("all")
        original = QueryExecutor(tiny_db).execute(query)
        neighbor = generate_neighbor(tiny_db, PrivacyScenario.fact_only(), rng=3)
        assert abs(QueryExecutor(neighbor).execute(query) - original) <= 1.0


class TestDimensionNeighbor:
    def test_deleting_a_dimension_tuple_cascades(self, tiny_db):
        policy = NeighborhoodPolicy(dimension_keys={"Color": 0})
        neighbor = generate_neighbor(
            tiny_db, PrivacyScenario.dimensions("Color"), policy=policy
        )
        # Colour row 0 had fan-out 2, so two fact rows disappear.
        assert neighbor.num_fact_rows == tiny_db.num_fact_rows - 2
        assert neighbor.dimension("Color").num_rows == 5

    def test_foreign_keys_remain_valid_after_remap(self, tiny_db):
        policy = NeighborhoodPolicy(dimension_keys={"Color": 2})
        neighbor = generate_neighbor(
            tiny_db, PrivacyScenario.dimensions("Color"), policy=policy
        )
        codes = neighbor.fact_foreign_key_codes("Color")
        assert codes.max() < neighbor.dimension("Color").num_rows
        # The asymmetry the paper stresses: the count changes by the fan-out,
        # not by one.
        assert tiny_db.num_fact_rows - neighbor.num_fact_rows == 2

    def test_multi_dimension_conjunction(self, tiny_db):
        # Fact rows referencing BOTH Color row 0 and Size row 0: only row 0
        # (ColorKey cycles mod 6, SizeKey mod 4; both zero only at row 0).
        policy = NeighborhoodPolicy(dimension_keys={"Color": 0, "Size": 0})
        neighbor = generate_neighbor(
            tiny_db, PrivacyScenario.dimensions("Color", "Size"), policy=policy
        )
        assert neighbor.num_fact_rows == tiny_db.num_fact_rows - 1
        assert neighbor.dimension("Color").num_rows == 5
        assert neighbor.dimension("Size").num_rows == 3

    def test_full_scenario_also_drops_a_fact_row(self, tiny_db):
        policy = NeighborhoodPolicy(dimension_keys={"Color": 0})
        neighbor = generate_neighbor(
            tiny_db, PrivacyScenario.full("Color"), policy=policy, rng=5
        )
        # Two rows removed through the FK cascade plus one more fact row.
        assert neighbor.num_fact_rows == tiny_db.num_fact_rows - 3

    def test_pinned_row_out_of_range_rejected(self, tiny_db):
        policy = NeighborhoodPolicy(dimension_keys={"Color": 77})
        with pytest.raises(SchemaError):
            generate_neighbor(tiny_db, PrivacyScenario.dimensions("Color"), policy=policy)

    def test_neighbor_is_valid_database(self, ssb_small):
        neighbor = generate_neighbor(
            ssb_small, PrivacyScenario.dimensions("Customer"), rng=2
        )
        # Validation runs in the constructor; additionally check the FK range.
        codes = neighbor.fact_foreign_key_codes("Customer")
        assert codes.max() < neighbor.dimension("Customer").num_rows

    def test_asymmetry_between_fact_and_dimension(self, ssb_small):
        """Deleting a dimension tuple can remove many fact rows; deleting a
        fact tuple removes exactly one — the asymmetry of Section 3.2."""
        fact_neighbor = generate_neighbor(ssb_small, PrivacyScenario.fact_only(), rng=1)
        heavy_customer = int(np.argmax(ssb_small.fan_out("Customer")))
        dim_neighbor = generate_neighbor(
            ssb_small,
            PrivacyScenario.dimensions("Customer"),
            policy=NeighborhoodPolicy(dimension_keys={"Customer": heavy_customer}),
        )
        fact_delta = ssb_small.num_fact_rows - fact_neighbor.num_fact_rows
        dim_delta = ssb_small.num_fact_rows - dim_neighbor.num_fact_rows
        assert fact_delta == 1
        assert dim_delta == ssb_small.max_fan_out("Customer")
        assert dim_delta > fact_delta
