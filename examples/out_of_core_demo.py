"""Out-of-core demo: a mapped database under a memory cap the eager path cannot fit.

The script proves the headline property of the columnar storage layer
(docs/STORAGE.md) end to end, with the operating system as the referee:

1. The parent process generates an SSB instance once and spills it to a
   per-column on-disk layout (``StarDatabase.spill_to``).
2. A child process runs a Table-1 style experiment grid over the *mapped*
   instance under a hard ``RLIMIT_AS`` address-space cap set to
   ``baseline + fact_bytes // 2`` — half the fact table.  The chunked
   engine streams the fact column by column in fixed-size chunks, so the
   grid completes without ever materialising the table.
3. The same cap is applied to a child that tries the *in-memory* path.
   Holding the fact table alone needs ``fact_bytes`` above baseline, so
   the allocation fails — the cap is one the eager path provably exceeds.
4. The parent re-runs the grid in memory without a cap and byte-compares
   the two CSVs (timing columns excluded): out-of-core execution changes
   where bytes live, never what the experiment computes.

Usage::

    PYTHONPATH=src python examples/out_of_core_demo.py [--rows N]

Linux-only (``RLIMIT_AS`` + ``/proc/self/status``); elsewhere it prints a
notice and exits 0 so CI wiring stays portable.
"""

from __future__ import annotations

import argparse
import csv
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: Fact-table row width: 4 int64 foreign keys + 3 float64 measures.
FACT_BYTES_PER_ROW = 7 * 8
QUERY_NAMES = ("Qc1", "Qc3")
EPSILONS = (0.1, 1.0)
TRIALS = 2

# Keep numpy's BLAS from reserving per-thread scratch address space that
# would count against the child's RLIMIT_AS cap.
_CHILD_ENV = {
    "OPENBLAS_NUM_THREADS": "1",
    "OMP_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
}


def _vm_peak_kb() -> int:
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmPeak:"):
                return int(line.split()[1])
    raise RuntimeError("VmPeak not found in /proc/self/status")


def _experiment_config(rows: int, storage: str, data_dir: str | None):
    from repro.evaluation.experiments.common import ExperimentConfig

    return ExperimentConfig(
        epsilons=EPSILONS,
        trials=TRIALS,
        scale_factor=1.0,
        rows_per_scale_factor=rows,
        seed=7,
        storage=storage,
        data_dir=data_dir,
    )


def _write_canonical_csv(result, path: Path) -> None:
    """The experiment CSV minus its wall-clock column, for byte comparison."""
    rows = [
        {key: value for key, value in row.items() if key != "mean_time_s"}
        for row in result.rows
    ]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def _run_grid(rows: int, storage: str, data_dir: str | None, out_csv: Path) -> None:
    from repro.evaluation.experiments import table1

    config = _experiment_config(rows, storage, data_dir)
    result = table1.run(config, query_names=QUERY_NAMES)
    _write_canonical_csv(result, out_csv)


def _child_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--mode", choices=("probe", "mapped", "memory"), required=True)
    parser.add_argument("--rows", type=int, required=True)
    parser.add_argument("--cap-bytes", type=int, default=0)
    parser.add_argument("--data-dir", default=None)
    parser.add_argument("--out-csv", default=None)
    args = parser.parse_args(argv)

    if args.cap_bytes:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (args.cap_bytes, args.cap_bytes))

    if args.mode == "probe":
        # Pay every import and lazy one-off the capped children will pay —
        # on a tiny throwaway instance — then report the address-space peak
        # that becomes the cap's baseline.
        _run_grid(2000, "memory", None, Path(tempfile.mkstemp(suffix=".csv")[1]))
        print(f"baseline_vm_peak_kb={_vm_peak_kb()}")
        return 0

    if args.mode == "mapped":
        _run_grid(args.rows, "mapped", args.data_dir, Path(args.out_csv))
        print(f"mapped_vm_peak_kb={_vm_peak_kb()}")
        return 0

    # mode == "memory": expected to die against the cap while building.
    print("memory-build-start", flush=True)
    try:
        _run_grid(args.rows, "memory", None, Path(args.out_csv))
    except MemoryError:
        print("memory-build-failed: MemoryError", flush=True)
        return 42
    print("memory-build-unexpectedly-succeeded", flush=True)
    return 0


def _spawn(child_args: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ, **_CHILD_ENV)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", *child_args],
        env=env,
        capture_output=True,
        text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=750_000,
        help="fact rows; the cap leaves headroom for only half the fact table",
    )
    args, extra = parser.parse_known_args()
    if extra and extra[0] == "--child":
        return _child_main([a for a in sys.argv[1:] if a != "--child"])

    if sys.platform != "linux":
        print("out-of-core demo requires Linux (RLIMIT_AS); skipping")
        return 0

    rows = args.rows
    fact_bytes = rows * FACT_BYTES_PER_ROW

    print(f"== out-of-core demo: {rows} fact rows "
          f"({fact_bytes / 1e6:.0f} MB fact table) ==")

    probe = _spawn(["--mode", "probe", "--rows", str(rows)])
    if probe.returncode != 0:
        print(probe.stdout + probe.stderr, file=sys.stderr)
        raise SystemExit("probe child failed")
    baseline_kb = int(probe.stdout.strip().rsplit("=", 1)[1])
    cap_bytes = baseline_kb * 1024 + fact_bytes // 2
    print(f"baseline address space {baseline_kb / 1024:.0f} MB; "
          f"cap = baseline + fact/2 = {cap_bytes / 1e6:.0f} MB")

    with tempfile.TemporaryDirectory(prefix="out_of_core_demo_") as tmp:
        data_dir = os.path.join(tmp, "data")
        mapped_csv = Path(tmp) / "mapped.csv"
        memory_csv = Path(tmp) / "memory.csv"

        # Spill once, uncapped: this is the offline preparation step.
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.evaluation.experiments.common import build_ssb_database

        database = build_ssb_database(_experiment_config(rows, "mapped", data_dir))
        print(f"spilled + attached instance ({database.storage_kind}), "
              f"fingerprint {database.cache_fingerprint()[:12]}…")

        # The mapped path must finish the whole grid under the cap.
        mapped = _spawn([
            "--mode", "mapped", "--rows", str(rows), "--cap-bytes", str(cap_bytes),
            "--data-dir", data_dir, "--out-csv", str(mapped_csv),
        ])
        if mapped.returncode != 0:
            print(mapped.stdout + mapped.stderr, file=sys.stderr)
            raise SystemExit("mapped child failed under the cap")
        mapped_peak_kb = int(mapped.stdout.strip().rsplit("=", 1)[1])
        print(f"mapped grid finished under the cap "
              f"(peak {mapped_peak_kb / 1024:.0f} MB / "
              f"cap {cap_bytes / 1e6 / 1.048576:.0f} MB)")

        # The eager path must die against the same cap: holding the fact
        # table alone needs twice the headroom the cap leaves.
        memory = _spawn([
            "--mode", "memory", "--rows", str(rows), "--cap-bytes", str(cap_bytes),
            "--out-csv", str(memory_csv),
        ])
        if memory.returncode == 0 or "memory-build-start" not in memory.stdout:
            print(memory.stdout + memory.stderr, file=sys.stderr)
            raise SystemExit("in-memory child unexpectedly survived the cap")
        print(f"in-memory grid refused by the cap as expected "
              f"(exit {memory.returncode})")

        # Same grid, eager and uncapped, must agree byte for byte.
        _run_grid(rows, "memory", None, memory_csv)
        mapped_bytes = mapped_csv.read_bytes()
        memory_bytes = memory_csv.read_bytes()
        if mapped_bytes != memory_bytes:
            raise SystemExit("mapped and in-memory CSVs differ")
        print(f"mapped CSV byte-identical to in-memory CSV "
              f"({len(mapped_bytes)} bytes, {len(QUERY_NAMES)} queries x "
              f"{len(EPSILONS)} epsilons)")

    print("out-of-core demo passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
