"""The star-join workload matrices W1 and W2 (paper Section 6.1).

The paper's workload experiments answer two workloads of counting queries
whose predicates cover three dimension attributes — ``Date.year`` (domain
size 7), ``Customer.region`` (5) and ``Supplier.region`` (5).  Each workload
is given as an ``l × 17`` 0/1 matrix whose columns are the concatenated
one-hot encodings of the three attribute domains; each row is one query.

* ``W1`` (11 queries) mixes point constraints on each attribute.
* ``W2`` (7 queries) makes the first attribute's constraints cumulative
  (prefix ranges [1, i]), which is where the Workload Decomposition strategy's
  advantage is largest.

``workload_queries_from_matrix`` converts a matrix back into
:class:`~repro.db.query.StarJoinQuery` objects against the SSB schema so both
the independent-PM baseline and WD can answer them.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.matrix_decomposition import predicate_from_indicator
from repro.datagen.ssb import ssb_schema
from repro.db.query import StarJoinQuery
from repro.db.schema import StarSchema
from repro.exceptions import QueryError

__all__ = [
    "W1_MATRIX",
    "W2_MATRIX",
    "WORKLOAD_ATTRIBUTE_BLOCKS",
    "workload_queries_from_matrix",
    "workload_w1",
    "workload_w2",
]

#: The attribute blocks of the workload matrices, in column order.
WORKLOAD_ATTRIBUTE_BLOCKS: tuple[tuple[str, str, int], ...] = (
    ("Date", "year", 7),
    ("Customer", "region", 5),
    ("Supplier", "region", 5),
)

W1_MATRIX = np.array(
    [
        [1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0],
        [0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0],
    ],
    dtype=np.float64,
)

W2_MATRIX = np.array(
    [
        [1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0],
        [1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0],
        [1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0],
        [1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0],
        [1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0],
        [1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0],
        [1, 1, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0],
    ],
    dtype=np.float64,
)


def _split_blocks(row: np.ndarray) -> list[np.ndarray]:
    blocks = []
    start = 0
    for _, _, size in WORKLOAD_ATTRIBUTE_BLOCKS:
        blocks.append(row[start : start + size])
        start += size
    if start != row.shape[0]:
        raise QueryError(
            f"workload row length {row.shape[0]} does not match the attribute "
            f"blocks (expected {start})"
        )
    return blocks


def workload_queries_from_matrix(
    matrix: np.ndarray,
    schema: Optional[StarSchema] = None,
    name_prefix: str = "W",
) -> list[StarJoinQuery]:
    """Convert a workload matrix into counting star-join queries.

    Each row becomes one COUNT query whose per-attribute predicates are
    rebuilt from the row's one-hot blocks.
    """
    schema = schema or ssb_schema()
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise QueryError("a workload matrix must be two-dimensional")
    queries = []
    for index, row in enumerate(matrix):
        predicates = []
        for (table, attribute, _), block in zip(WORKLOAD_ATTRIBUTE_BLOCKS, _split_blocks(row)):
            domain = schema.table_schema(table).domain_of(attribute)
            if block.sum() == 0:
                raise QueryError(
                    f"workload row {index} selects nothing on {table}.{attribute}"
                )
            predicates.append(predicate_from_indicator(block, domain, table, attribute))
        queries.append(StarJoinQuery.count(f"{name_prefix}{index + 1}", predicates))
    return queries


def workload_w1(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    """The 11 counting queries of workload W1."""
    return workload_queries_from_matrix(W1_MATRIX, schema=schema, name_prefix="W1-")


def workload_w2(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    """The 7 counting queries of workload W2 (cumulative year ranges)."""
    return workload_queries_from_matrix(W2_MATRIX, schema=schema, name_prefix="W2-")


def workload_matrix_from_queries(
    queries: Sequence[StarJoinQuery],
) -> np.ndarray:
    """Inverse of :func:`workload_queries_from_matrix` (round-trip tested)."""
    rows = []
    for query in queries:
        blocks = []
        for table, attribute, size in WORKLOAD_ATTRIBUTE_BLOCKS:
            indicator = np.ones(size)
            for predicate in query.predicates:
                if (predicate.table, predicate.attribute) == (table, attribute):
                    indicator = predicate.indicator_vector()
            blocks.append(indicator)
        rows.append(np.concatenate(blocks))
    return np.vstack(rows)
