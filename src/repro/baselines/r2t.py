"""R2T: Race-to-the-Top, instance-optimal truncation (paper Eq. 9, and [7]).

R2T removes the need to guess a truncation threshold: it evaluates the
truncated query ``Q(D_s, τ)`` at geometrically increasing thresholds
``τ(j) = 2^j`` up to the global-sensitivity bound GS_Q, privatises each
candidate with ``Lap(log(GS_Q)·τ(j)/ε)``, subtracts a per-candidate penalty
``log(GS_Q)·ln(log(GS_Q)/α)·τ(j)/ε`` so that over-truncated candidates cannot
win by luck, and releases the maximum of the noisy candidates and
``Q(D_s, 0) = 0``.  The maximum is post-processing, so the whole procedure is
ε-DP under sequential composition over the candidates.

The utility guarantee (with probability ≥ 1 − α)::

    Q(D_s) − 4·log(GS_Q)·ln(log(GS_Q)/α)·τ*(D_s)/ε  ≤  Q̂(D_s)  ≤  Q(D_s)

Per the paper's Table 1, R2T supports COUNT and SUM star-join queries but not
GROUP BY (listed as future work of [7]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.db.query import AggregateKind, StarJoinQuery
from repro.dp.neighboring import PrivacyScenario
from repro.dp.noise import laplace_noise
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = ["RaceToTheTop", "R2TTrace"]


@dataclass
class R2TTrace:
    """Diagnostics of one R2T invocation (exposed for tests and ablations)."""

    thresholds: list[float]
    truncated_answers: list[float]
    noisy_candidates: list[float]
    winner_threshold: Optional[float]
    value: float


class RaceToTheTop:
    """The R2T mechanism for star-join COUNT/SUM queries."""

    name = "R2T"
    supports_count = True
    supports_sum = True
    supports_group_by = False

    def __init__(
        self,
        epsilon: float,
        scenario: Optional[PrivacyScenario] = None,
        global_sensitivity_bound: Optional[float] = None,
        alpha: float = 0.05,
        truncation_dimension: Optional[str] = None,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"α must lie in (0, 1), got {alpha!r}")
        self.epsilon = float(epsilon)
        self.scenario = scenario
        self.global_sensitivity_bound = global_sensitivity_bound
        self.alpha = float(alpha)
        self.truncation_dimension = truncation_dimension
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _pick_dimension(self, database: StarDatabase, engine: ExecutionEngine) -> str:
        if self.truncation_dimension is not None:
            return self.truncation_dimension
        scenario = self.scenario or PrivacyScenario.dimensions(
            *database.schema.dimension_names
        )
        if not scenario.private_dimensions:
            raise UnsupportedQueryError(
                "R2T requires at least one private dimension table (with only a "
                "private fact table the plain Laplace mechanism applies)"
            )
        # Truncating over the private dimension with the smallest maximum
        # fan-out (i.e. the most keys) minimises the lossless threshold τ* and
        # therefore the error bound — the instance-optimal choice R2T aims for.
        return min(
            scenario.private_dimensions, key=lambda name: engine.max_fan_out(name)
        )

    def _gs_bound(
        self, database: StarDatabase, query: StarJoinQuery, engine: ExecutionEngine
    ) -> float:
        if self.global_sensitivity_bound is not None:
            return float(self.global_sensitivity_bound)
        # A public coarse bound: no single entity can contribute more than the
        # fact table is large (times the measure bound for SUM queries).
        bound = float(max(database.num_fact_rows, 2))
        if query.kind is AggregateKind.SUM:
            measure_max = float(
                np.abs(engine.measure_values(query.aggregate.measure)).max()
            )
            bound *= max(measure_max, 1.0)
        return bound

    # ------------------------------------------------------------------
    def run(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> R2TTrace:
        """Run R2T and return the full trace of candidates."""
        if query.is_grouped:
            raise UnsupportedQueryError(
                "R2T does not support GROUP BY star-join queries (future work of [7])"
            )
        if query.kind is AggregateKind.AVG:
            raise UnsupportedQueryError("R2T does not support AVG star-join queries")
        generator = ensure_rng(rng) if rng is not None else self._rng

        engine = engine if engine is not None else ExecutionEngine.for_database(database)
        dimension = self._pick_dimension(database, engine)
        measure = None if query.kind is AggregateKind.COUNT else query.aggregate.measure
        ordered, prefix = engine.sorted_contributions(
            query.predicates, dimension, kind=query.kind, measure=measure
        )

        gs_bound = self._gs_bound(database, query, engine)
        num_candidates = max(int(math.ceil(math.log2(gs_bound))), 1)
        log_gs = float(num_candidates)
        penalty_factor = log_gs * math.log(max(log_gs / self.alpha, math.e))
        per_candidate_epsilon = self.epsilon / num_candidates

        thresholds: list[float] = []
        truncated_answers: list[float] = []
        noisy_candidates: list[float] = []
        for j in range(1, num_candidates + 1):
            tau = float(2**j)
            truncated = engine.truncated_sum_from_sorted(ordered, prefix, tau)
            noise = laplace_noise(tau, per_candidate_epsilon, rng=generator)
            candidate = truncated + noise - penalty_factor * tau / self.epsilon
            thresholds.append(tau)
            truncated_answers.append(truncated)
            noisy_candidates.append(candidate)

        best_index = int(np.argmax(noisy_candidates)) if noisy_candidates else -1
        best_value = noisy_candidates[best_index] if noisy_candidates else 0.0
        value = max(best_value, 0.0)  # Q(D_s, 0) = 0 is always a candidate.
        winner = thresholds[best_index] if value > 0.0 and noisy_candidates else None
        return R2TTrace(
            thresholds=thresholds,
            truncated_answers=truncated_answers,
            noisy_candidates=noisy_candidates,
            winner_threshold=winner,
            value=float(value),
        )

    def answer_value(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> float:
        """Answer ``query`` with R2T (ε-DP)."""
        return self.run(database, query, rng=rng, engine=engine).value

    # ------------------------------------------------------------------
    def utility_bound(
        self, database: StarDatabase, query: StarJoinQuery
    ) -> float:
        """The error bound ``4·log(GS_Q)·ln(log(GS_Q)/α)·τ*/ε`` of [7].

        ``τ*`` is estimated as the smallest power of two at which truncation
        becomes lossless on this instance.
        """
        engine = ExecutionEngine.for_database(database)
        executor = QueryExecutor(database, engine=engine)
        dimension = self._pick_dimension(database, engine)
        per_key = executor.contribution_per_key(query, dimension)
        exact = float(per_key.sum())
        gs_bound = self._gs_bound(database, query, engine)
        num_candidates = max(int(math.ceil(math.log2(gs_bound))), 1)
        log_gs = float(num_candidates)
        tau_star = float(per_key.max()) if per_key.size else 1.0
        penalty = 4.0 * log_gs * math.log(max(log_gs / self.alpha, math.e)) * tau_star / self.epsilon
        return min(penalty, exact) if exact > 0 else penalty
