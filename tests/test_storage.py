"""Storage-parity suite: mapped vs in-memory, chunked vs whole-array.

The contracts under test (see docs/STORAGE.md):

* A spilled-then-attached database is the *same* logical instance: equal
  table digests, equal cache fingerprint (same cache namespace), equal
  column bytes.
* Every chunked kernel is bit-exact against the unchunked reference for
  every chunk size — including 1, a prime that does not divide the row
  count, and one larger than the table.
* Experiment CSVs are byte-identical across storage modes and job counts,
  and served answers from a mapped database match the offline runner.
* ``Table.take`` validates bounds with a ``SchemaError`` naming the table;
  ``Table.content_digest`` streams (no full-copy) and mapped tables serve
  the manifest's precomputed digest.
"""

import csv
import dataclasses
import hashlib
import json

import numpy as np
import pytest

from repro.datagen.ssb import SSBConfig, SSBGenerator
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor, GroupedResult
from repro.db.query import AggregateKind, Measure
from repro.db.storage import (
    DEFAULT_CHUNK_ROWS,
    MANIFEST_NAME,
    MemoryColumnStore,
    attach_database,
    iter_chunks,
    spill_database,
)
from repro.db.table import Column, Table
from repro.evaluation.experiments import table1
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.exceptions import SchemaError
from repro.core.workload import workload_attributes
from repro.serving import QueryPlanner, request_stream, serialize_answer
from repro.workloads.ssb_queries import ssb_query

ROWS = 997  # deliberately prime: no chunk size below divides it evenly
#: 1 row, a prime that does not divide ROWS, and one larger than the table.
CHUNK_SWEEP = (1, 13, 101, ROWS + 13)
QUERIES = ("Qc1", "Qs2", "Qg2")


@pytest.fixture(scope="module")
def memory_db():
    return SSBGenerator(
        SSBConfig(scale_factor=1.0, rows_per_scale_factor=ROWS, seed=23)
    ).build()


@pytest.fixture(scope="module")
def mapped_db(memory_db, tmp_path_factory):
    manifest = memory_db.spill_to(tmp_path_factory.mktemp("spill") / "ssb")
    return attach_database(manifest)


# ----------------------------------------------------------------------
# chunk iteration and the memory store
# ----------------------------------------------------------------------
class TestIterChunks:
    def test_none_yields_single_full_range(self):
        assert list(iter_chunks(10, None)) == [(0, 10)]

    def test_chunk_larger_than_rows_yields_single_range(self):
        assert list(iter_chunks(10, 11)) == [(0, 10)]

    def test_ranges_cover_exactly(self):
        ranges = list(iter_chunks(10, 3))
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_zero_rows_yield_empty_range(self):
        assert list(iter_chunks(0, 4)) == [(0, 0)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            list(iter_chunks(-1, 4))
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))


class TestMemoryColumnStore:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            MemoryColumnStore({})

    def test_rejects_length_mismatch(self):
        with pytest.raises(SchemaError, match="differing lengths"):
            MemoryColumnStore({"a": np.arange(3), "b": np.arange(4)})

    def test_unknown_column_is_schema_error(self):
        store = MemoryColumnStore({"a": np.arange(3)})
        with pytest.raises(SchemaError, match="no column 'b'"):
            store.array("b")

    def test_read_chunk_is_a_slice(self):
        store = MemoryColumnStore({"a": np.arange(10)})
        assert np.array_equal(store.read_chunk("a", 2, 5), [2, 3, 4])
        assert store.digest() is None


# ----------------------------------------------------------------------
# spill / attach round trip
# ----------------------------------------------------------------------
class TestSpillAttach:
    def test_same_logical_instance(self, memory_db, mapped_db):
        assert memory_db.storage_kind == "memory"
        assert mapped_db.storage_kind == "mapped"
        assert mapped_db.cache_fingerprint() == memory_db.cache_fingerprint()
        for name in [memory_db.fact.name, *sorted(memory_db.dimensions)]:
            source, attached = memory_db.table(name), mapped_db.table(name)
            assert attached.content_digest() == source.content_digest()
            assert attached.column_names == source.column_names
            for column in source.column_names:
                a, b = source.codes(column), attached.codes(column)
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_domains_survive_the_round_trip(self, memory_db, mapped_db):
        for name in memory_db.dimensions:
            source, attached = memory_db.table(name), mapped_db.table(name)
            for column in source.column_names:
                original = source.domain(column)
                restored = attached.domain(column)
                if original is None:
                    assert restored is None
                else:
                    assert restored.name == original.name
                    assert restored.values == original.values

    def test_attach_accepts_directory_or_manifest(self, memory_db, tmp_path):
        manifest = memory_db.spill_to(tmp_path / "x")
        by_dir = attach_database(tmp_path / "x")
        by_manifest = attach_database(manifest)
        assert by_dir.cache_fingerprint() == by_manifest.cache_fingerprint()

    def test_missing_manifest_is_schema_error(self, tmp_path):
        with pytest.raises(SchemaError, match="no mapped-database manifest"):
            attach_database(tmp_path / "nothing")

    def test_corrupt_manifest_is_schema_error(self, tmp_path):
        target = tmp_path / "broken"
        target.mkdir()
        (target / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SchemaError, match="corrupt manifest"):
            attach_database(target)

    def test_respill_same_instance_is_idempotent(self, memory_db, tmp_path):
        first = memory_db.spill_to(tmp_path / "dup")
        second = memory_db.spill_to(tmp_path / "dup")
        assert first == second

    def test_respill_different_instance_is_refused(self, memory_db, tmp_path):
        memory_db.spill_to(tmp_path / "slot")
        other = SSBGenerator(
            SSBConfig(scale_factor=1.0, rows_per_scale_factor=ROWS, seed=99)
        ).build()
        with pytest.raises(SchemaError, match="different spilled database"):
            other.spill_to(tmp_path / "slot")
        # ... unless explicitly overwritten.
        manifest = other.spill_to(tmp_path / "slot", overwrite=True)
        assert attach_database(manifest).cache_fingerprint() == other.cache_fingerprint()

    def test_object_dtype_column_is_refused(self, tmp_path):
        table = Table("T", [Column(name="c", values=np.array(["a", None], dtype=object))])
        store_dir = tmp_path / "obj"
        from repro.db.storage.mapped import _spill_table

        with pytest.raises(SchemaError, match="object dtype"):
            _spill_table(table, store_dir)

    def test_snowflake_round_trip(self, tmp_path):
        database = SnowflakeGenerator(
            SnowflakeConfig(scale_factor=1.0, rows_per_scale_factor=500, seed=9)
        ).build()
        attached = attach_database(database.spill_to(tmp_path / "snow"))
        assert attached.cache_fingerprint() == database.cache_fingerprint()
        assert attached.schema.snowflake_edges == database.schema.snowflake_edges
        query = ssb_query("Qc1")
        assert QueryExecutor(attached).execute(query) == QueryExecutor(database).execute(
            query
        )

    def test_fingerprint_mismatch_is_detected(self, memory_db, tmp_path):
        manifest_path = memory_db.spill_to(tmp_path / "tamper")
        manifest = json.loads(manifest_path.read_text())
        manifest["tables"][memory_db.fact.name]["digest"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError, match="fingerprint does not match"):
            attach_database(manifest_path)


# ----------------------------------------------------------------------
# chunked kernels: bit-exact for every chunk size, both storage modes
# ----------------------------------------------------------------------
class TestChunkedKernelEquivalence:
    """Sweep chunk sizes (1, prime, > num_rows) against the unchunked path."""

    @pytest.fixture(scope="class")
    def reference(self, memory_db):
        engine = ExecutionEngine(memory_db)
        assert engine.chunk_rows is None  # memory default: whole-array
        return engine

    def _engines(self, memory_db, mapped_db, chunk_rows):
        return (
            ExecutionEngine(memory_db, chunk_rows=chunk_rows),
            ExecutionEngine(mapped_db, chunk_rows=chunk_rows),
        )

    def test_mapped_engine_chunks_by_default(self, mapped_db):
        assert ExecutionEngine(mapped_db).chunk_rows == DEFAULT_CHUNK_ROWS

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_selection_masks(self, memory_db, mapped_db, reference, chunk_rows):
        for engine in self._engines(memory_db, mapped_db, chunk_rows):
            for name in QUERIES:
                query = ssb_query(name)
                expected = reference.selection_mask(query.predicates)
                actual = engine.selection_mask(query.predicates)
                assert actual.dtype == expected.dtype
                assert np.array_equal(actual, expected)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_fan_out(self, memory_db, mapped_db, reference, chunk_rows):
        for engine in self._engines(memory_db, mapped_db, chunk_rows):
            for dimension in memory_db.schema.foreign_keys:
                expected = reference.fan_out(dimension)
                actual = engine.fan_out(dimension)
                assert actual.dtype == expected.dtype
                assert np.array_equal(actual, expected)
                assert engine.max_fan_out(dimension) == reference.max_fan_out(dimension)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_measure_values(self, memory_db, mapped_db, reference, chunk_rows):
        for engine in self._engines(memory_db, mapped_db, chunk_rows):
            for measure in (Measure("revenue"), Measure("revenue", subtract="supplycost")):
                expected = reference.measure_values(measure)
                actual = engine.measure_values(measure)
                assert actual.dtype == expected.dtype
                assert np.array_equal(actual, expected)  # bit-exact floats

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_contributions(self, memory_db, mapped_db, reference, chunk_rows):
        predicates = ssb_query("Qc1").predicates
        for engine in self._engines(memory_db, mapped_db, chunk_rows):
            for dimension in ("Customer", "Supplier"):
                count_ref = reference.contribution_per_key(predicates, dimension)
                count = engine.contribution_per_key(predicates, dimension)
                assert np.array_equal(count, count_ref) and count.dtype == count_ref.dtype
                sum_ref = reference.contribution_per_key(
                    predicates, dimension, AggregateKind.SUM, measure="revenue"
                )
                total = engine.contribution_per_key(
                    predicates, dimension, AggregateKind.SUM, measure="revenue"
                )
                assert np.array_equal(total, sum_ref) and total.dtype == sum_ref.dtype
                ordered_ref, prefix_ref = reference.sorted_contributions(
                    predicates, dimension
                )
                ordered, prefix = engine.sorted_contributions(predicates, dimension)
                assert np.array_equal(ordered, ordered_ref)
                assert np.array_equal(prefix, prefix_ref)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_data_cubes(self, memory_db, mapped_db, reference, chunk_rows):
        attributes = tuple(workload_attributes([ssb_query("Qc1"), ssb_query("Qc3")]))
        count_ref = reference.data_cube(attributes)
        sum_ref = reference.data_cube(
            attributes, kind=AggregateKind.SUM, measure="revenue"
        )
        for engine in self._engines(memory_db, mapped_db, chunk_rows):
            count = engine.data_cube(attributes)
            assert np.array_equal(count, count_ref) and count.dtype == count_ref.dtype
            total = engine.data_cube(attributes, kind=AggregateKind.SUM, measure="revenue")
            assert np.array_equal(total, sum_ref) and total.dtype == sum_ref.dtype

    @pytest.mark.parametrize("chunk_rows", CHUNK_SWEEP)
    def test_executor_answers(self, memory_db, mapped_db, reference, chunk_rows):
        ref_executor = QueryExecutor(memory_db, engine=reference)
        for database, engine in zip(
            (memory_db, mapped_db), self._engines(memory_db, mapped_db, chunk_rows)
        ):
            executor = QueryExecutor(database, engine=engine)
            for name in QUERIES:
                query = ssb_query(name)
                expected = ref_executor.execute(query)
                actual = executor.execute(query)
                if isinstance(expected, GroupedResult):
                    assert isinstance(actual, GroupedResult)
                    assert actual.keys == expected.keys
                    assert actual.groups == expected.groups
                else:
                    assert actual == expected


# ----------------------------------------------------------------------
# experiment CSV parity: storage mode x jobs
# ----------------------------------------------------------------------
class TestStorageParity:
    """In-memory vs mapped x jobs 1/4 produce byte-identical experiment CSVs."""

    def _canonical_rows(self, result, tmp_path, label):
        path = result.to_csv(tmp_path / f"{label}.csv")
        with path.open() as handle:
            return [
                {k: v for k, v in row.items() if k != "mean_time_s"}
                for row in csv.DictReader(handle)
            ]

    def test_csv_identical_across_storage_and_jobs(self, tmp_path):
        base = ExperimentConfig(
            epsilons=(0.1, 1.0),
            trials=2,
            scale_factor=1.0,
            rows_per_scale_factor=6000,
            seed=11,
        )
        rows = {}
        for storage in ("memory", "mapped"):
            for jobs in (1, 4):
                config = dataclasses.replace(
                    base,
                    jobs=jobs,
                    storage=storage,
                    data_dir=str(tmp_path / "data") if storage == "mapped" else None,
                )
                result = table1.run(config, query_names=("Qc1", "Qs2", "Qg2"))
                rows[(storage, jobs)] = self._canonical_rows(
                    result, tmp_path, f"{storage}-j{jobs}"
                )
        reference = rows[("memory", 1)]
        for key, value in rows.items():
            assert value == reference, f"CSV rows diverged for {key}"

    def test_mapped_requires_data_dir(self):
        config = ExperimentConfig(storage="mapped", data_dir=None)
        with pytest.raises(ValueError, match="data_dir"):
            build_ssb_database(config)


# ----------------------------------------------------------------------
# serving parity with a mapped database
# ----------------------------------------------------------------------
class TestServingMappedParity:
    SEED = 424242

    @pytest.fixture(scope="class")
    def mapped_planner(self, tmp_path_factory):
        planner = QueryPlanner(
            seed=self.SEED,
            storage="mapped",
            data_dir=str(tmp_path_factory.mktemp("serving-data")),
        )
        planner.register("demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5)
        return planner

    def test_planner_storage_validation(self):
        with pytest.raises(ValueError):
            QueryPlanner(storage="mapped")
        with pytest.raises(ValueError):
            QueryPlanner(storage="tape")

    def test_registered_database_is_mapped(self, mapped_planner):
        entry = mapped_planner._databases["demo"]
        assert entry.database.storage_kind == "mapped"

    @pytest.mark.parametrize("mechanism,query", [("PM", "Qc1"), ("R2T", "Qs2")])
    def test_served_equals_offline(self, mapped_planner, mechanism, query):
        planned = mapped_planner.plan(
            {
                "database": "demo",
                "mechanism": mechanism,
                "epsilon": 0.5,
                "query": query,
                "trials": 3,
            }
        )
        payload = mapped_planner.execute(planned)
        entry = planned.entry
        offline = evaluate_mechanism(
            make_star_mechanism(planned.mechanism, planned.epsilon, scenario=entry.scenario),
            entry.database,
            planned.query,
            trials=planned.trials,
            rng=request_stream(
                mapped_planner.seed,
                entry.name,
                planned.mechanism,
                planned.query_label,
                planned.epsilon,
                planned.trials,
            ),
            exact_answer=QueryExecutor(entry.database).execute(planned.query),
            record_answers=True,
        )
        assert payload["answers"] == [serialize_answer(a) for a in offline.answers]
        assert payload["mean_relative_error"] == offline.mean_relative_error

    def test_served_bytes_identical_across_storage_modes(self, mapped_planner):
        memory_planner = QueryPlanner(seed=self.SEED)
        memory_planner.register(
            "demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5
        )
        request = {
            "database": "demo",
            "mechanism": "PM",
            "epsilon": 0.5,
            "query": "Qc3",
            "trials": 2,
        }
        mapped_payload = mapped_planner.execute(mapped_planner.plan(request))
        memory_payload = memory_planner.execute(memory_planner.plan(request))
        assert mapped_payload["answers"] == memory_payload["answers"]
        assert mapped_payload["answer"] == memory_payload["answer"]


# ----------------------------------------------------------------------
# satellite fixes: take() bounds, streamed digests
# ----------------------------------------------------------------------
class TestTakeBounds:
    def test_in_range_take_still_works(self):
        table = Table.from_arrays("T", {"a": np.arange(5)})
        assert list(table.take(np.array([3, 0])).codes("a")) == [3, 0]

    def test_out_of_range_raises_schema_error_with_table_name(self):
        table = Table.from_arrays("T", {"a": np.arange(5)})
        with pytest.raises(SchemaError, match=r"take\(\) indices out of range.*'T'"):
            table.take(np.array([0, 5]))

    def test_negative_indices_are_rejected(self):
        table = Table.from_arrays("T", {"a": np.arange(5)})
        with pytest.raises(SchemaError, match="out of range"):
            table.take(np.array([-1]))

    def test_empty_take_is_fine(self):
        table = Table.from_arrays("T", {"a": np.arange(5)})
        assert table.take(np.array([], dtype=np.int64)).num_rows == 0


class TestStreamedDigest:
    def _full_copy_digest(self, table):
        """The pre-streaming implementation, as the reference."""
        digest = hashlib.sha256()
        digest.update(table.name.encode("utf-8"))
        for name in table.column_names:
            column = table.column(name)
            values = np.ascontiguousarray(column.values)
            digest.update(column.name.encode("utf-8"))
            if column.domain is not None:
                digest.update(column.domain.name.encode("utf-8"))
                digest.update(repr(column.domain.values).encode("utf-8"))
            digest.update(str(values.dtype).encode("ascii"))
            if values.dtype == object:
                digest.update(repr(column.decoded()).encode("utf-8"))
            else:
                digest.update(values.tobytes())
        return digest.hexdigest()

    def test_streamed_digest_matches_full_copy_digest(self, memory_db):
        for name in [memory_db.fact.name, *memory_db.dimensions]:
            table = memory_db.table(name)
            assert table.content_digest() == self._full_copy_digest(table)

    def test_mapped_table_serves_manifest_digest_without_hashing(self, mapped_db):
        fact = mapped_db.fact
        assert fact.store.digest() is not None
        assert fact.content_digest() == fact.store.digest()

    def test_memory_digest_is_not_memoized(self):
        values = np.arange(6)
        table = Table.from_arrays("T", {"a": values})
        before = table.content_digest()
        values[0] = 100  # tables are immutable by convention, but the cache
        assert table.content_digest() != before  # layer relies on this changing
