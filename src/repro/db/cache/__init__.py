"""Backend-agnostic caching for the execution layer.

The package splits what used to be hard-wired inside
:class:`~repro.db.engine.ExecutionEngine` into three orthogonal pieces:

* :mod:`repro.db.cache.fingerprints` — the semantic cache keys (predicate /
  selection / query fingerprints, database content namespaces);
* :mod:`repro.db.cache.backend` — the :class:`CacheBackend` protocol, the
  region vocabulary and the :class:`CacheStats` counters;
* the interchangeable implementations:
  :class:`~repro.db.cache.local.LocalCacheBackend` (in-process, default),
  :class:`~repro.db.cache.shared.SharedMemoryCacheBackend` (cross-worker,
  Manager-based) and :class:`~repro.db.cache.remote.RemoteCacheBackend`
  (a TCP client of the out-of-process persistent cache server in
  :mod:`repro.db.cache.server`).  See ``docs/CACHE.md``.

One backend instance is *active* per process at any time
(:func:`active_backend`); every engine obtained through
``ExecutionEngine.for_database`` routes its cache traffic through it
dynamically, so installing a backend (``--cache-backend shared``) takes
effect for every database in the run — including engines that already exist,
and engines inherited by forked pool workers.  Engines constructed directly
(``ExecutionEngine(db)``) get a private local backend instead and are fully
isolated, which tests and ablations rely on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.db.cache.backend import (
    BOUNDED_REGIONS,
    DEFAULT_EVICTION_POLICY,
    EVICTION_POLICIES,
    REGIONS,
    SHARED_REGIONS,
    CacheBackend,
    CacheStats,
    value_nbytes,
)
from repro.db.cache.fingerprints import (
    database_fingerprint,
    measure_fingerprint,
    predicate_fingerprint,
    query_fingerprint,
    selection_fingerprint,
)
from repro.db.cache.local import LocalCacheBackend, LruCache
from repro.db.cache.remote import RemoteCacheBackend, parse_cache_url
from repro.db.cache.ring import HashRing
from repro.db.cache.shared import SharedMemoryCacheBackend
from repro.db.cache.sharded import ShardedCacheBackend, parse_shard_urls

__all__ = [
    "BOUNDED_REGIONS",
    "CACHE_BACKENDS",
    "CacheBackend",
    "CacheStats",
    "DEFAULT_EVICTION_POLICY",
    "EVICTION_POLICIES",
    "HashRing",
    "LocalCacheBackend",
    "LruCache",
    "REGIONS",
    "RemoteCacheBackend",
    "SHARED_REGIONS",
    "ShardedCacheBackend",
    "SharedMemoryCacheBackend",
    "active_backend",
    "backend_scope",
    "database_fingerprint",
    "make_backend",
    "measure_fingerprint",
    "parse_cache_url",
    "parse_shard_urls",
    "predicate_fingerprint",
    "query_fingerprint",
    "selection_fingerprint",
    "set_active_backend",
    "value_nbytes",
]

#: Backend names accepted by configuration (CLI ``--cache-backend``).
CACHE_BACKENDS: tuple[str, ...] = ("local", "shared", "remote")


def make_backend(
    name: str,
    max_entries: int = 192,
    url: "str | None" = None,
    path: "str | None" = None,
    policy: str = DEFAULT_EVICTION_POLICY,
    max_bytes: "int | None" = None,
    replicas: int = 1,
) -> CacheBackend:
    """Build a cache backend by its configuration name.

    ``max_entries`` bounds every bounded region; for the shared and remote
    backends the cross-process tier is bounded proportionally (16 ×
    ``max_entries``, the default 192 → 3072 entries) so ``--cache-size``
    also governs the out-of-process footprint.  ``policy`` selects the
    eviction policy of every bounded tier (``--cache-policy``, default
    cost-normalized utility); ``max_bytes`` adds a byte budget per bounded
    store (``--cache-max-bytes``), with the cross-process tiers again
    bounded at 16 × that budget.  The remote backend needs a server: ``url``
    (``--cache-url host:port``) names a running
    ``python -m repro.db.cache.server``; ``path`` (``--cache-path``) starts
    an embedded one persisting to that sqlite file instead.  A
    *comma-separated* ``url`` list (``--cache-url h:p1,h:p2``) shards the
    keyspace across those servers on a consistent-hash ring
    (:class:`~repro.db.cache.sharded.ShardedCacheBackend`); ``replicas``
    then writes each entry to that many distinct shards and reads fail over
    when a primary's breaker is open.
    """
    shared_bytes = None if max_bytes is None else int(max_bytes) * 16
    if name == "local":
        return LocalCacheBackend(max_entries, policy=policy, max_bytes=max_bytes)
    if name == "shared":
        return SharedMemoryCacheBackend(
            max_entries,
            max_shared_entries=max_entries * 16,
            policy=policy,
            max_bytes=max_bytes,
            max_shared_bytes=shared_bytes,
        )
    if name == "remote":
        shard_labels = parse_shard_urls(url) if url is not None else None
        if shard_labels is not None and len(shard_labels) > 1:
            if path is not None:
                raise ValueError("pass either a shard url list or path=, not both")
            return ShardedCacheBackend(
                urls=shard_labels,
                replicas=replicas,
                max_entries=max_entries,
                server_max_entries=max_entries * 16,
                policy=policy,
                max_bytes=max_bytes,
                server_max_bytes=shared_bytes,
            )
        return RemoteCacheBackend(
            url=shard_labels[0] if shard_labels is not None else None,
            path=path, max_entries=max_entries,
            server_max_entries=max_entries * 16,
            policy=policy,
            max_bytes=max_bytes,
            server_max_bytes=shared_bytes,
        )
    raise ValueError(f"unknown cache backend {name!r}; available: {CACHE_BACKENDS}")


#: The process-wide active backend (lazily a LocalCacheBackend).  Forked
#: workers inherit whatever was active in the parent at fork time, which is
#: how a pre-fork SharedMemoryCacheBackend ends up serving the whole pool.
_ACTIVE: Optional[CacheBackend] = None


def active_backend() -> CacheBackend:
    """The backend engines obtained via ``for_database`` currently route to."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = LocalCacheBackend()
    return _ACTIVE


def set_active_backend(backend: Optional[CacheBackend]) -> Optional[CacheBackend]:
    """Install ``backend`` as the process-wide active backend.

    Returns the previously installed backend (``None`` if the lazy default
    had not been materialised yet) so callers can restore it.  Passing
    ``None`` resets to a lazily created fresh local backend.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    return previous


@contextmanager
def backend_scope(backend: CacheBackend) -> Iterator[CacheBackend]:
    """Run a block with ``backend`` active, restoring the previous one after.

    The backend is *not* closed on exit — the caller owns its lifecycle
    (a shared backend's manager usually outlives several scopes).
    """
    previous = set_active_backend(backend)
    try:
        yield backend
    finally:
        set_active_backend(previous)
