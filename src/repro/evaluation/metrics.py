"""Utility metrics used by the evaluation (Section 6.1).

The paper reports *relative error* (in percent) as its utility measure, and
wall-clock running time as its efficiency measure.  Grouped (GROUP BY) answers
are compared with an L1-norm relative error over the union of groups, and
workload answers with the mean per-query relative error.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.db.executor import GroupedResult

__all__ = [
    "relative_error",
    "grouped_relative_error",
    "workload_relative_error",
    "answer_relative_error",
    "Stopwatch",
    "stopwatch",
]


def relative_error(true_value: float, noisy_value: float) -> float:
    """Relative error in percent, ``100 · |noisy − true| / |true|``.

    When the true value is zero the absolute error is returned instead (the
    conventional fallback; the evaluation queries all have non-zero answers).
    """
    true_value = float(true_value)
    noisy_value = float(noisy_value)
    if true_value == 0.0:
        return abs(noisy_value)
    return 100.0 * abs(noisy_value - true_value) / abs(true_value)


def grouped_relative_error(true: GroupedResult, noisy: GroupedResult) -> float:
    """L1-norm relative error (percent) between two grouped answers.

    The groups are aligned on the union of their keys (missing groups count
    as zero), so both spurious and missing groups are penalised.
    """
    true_vector, noisy_vector = true.as_vectors(noisy)
    denominator = np.abs(true_vector).sum()
    if denominator == 0.0:
        return float(np.abs(noisy_vector).sum())
    return float(100.0 * np.abs(noisy_vector - true_vector).sum() / denominator)


def workload_relative_error(
    true_values: Sequence[float], noisy_values: Sequence[float]
) -> float:
    """Mean per-query relative error (percent) over a workload."""
    true_array = np.asarray(true_values, dtype=np.float64)
    noisy_array = np.asarray(noisy_values, dtype=np.float64)
    if true_array.shape != noisy_array.shape:
        raise ValueError(
            f"workload answers have mismatching shapes {true_array.shape} vs "
            f"{noisy_array.shape}"
        )
    errors = [relative_error(t, n) for t, n in zip(true_array, noisy_array)]
    return float(np.mean(errors)) if errors else 0.0


def answer_relative_error(true_answer, noisy_answer) -> float:
    """Dispatch between scalar and grouped relative error."""
    if isinstance(true_answer, GroupedResult) and isinstance(noisy_answer, GroupedResult):
        return grouped_relative_error(true_answer, noisy_answer)
    return relative_error(float(true_answer), float(noisy_answer))


class Stopwatch:
    """Accumulates elapsed wall-clock time across laps."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []

    def add(self, seconds: float) -> None:
        self.elapsed += seconds
        self.laps.append(seconds)

    @property
    def mean_lap(self) -> float:
        return float(np.mean(self.laps)) if self.laps else 0.0


@contextmanager
def stopwatch(watch: Stopwatch) -> Iterator[None]:
    """Context manager recording one lap into ``watch``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        watch.add(time.perf_counter() - start)
