"""The k-star counting queries Q2* and Q3* (paper Appendix A.2).

Both queries count stars around every centre node whose id lies in the full
node range of the graph (the predicate ``from_id BETWEEN 1 AND n``), so the
predicate's domain size equals the number of vertices — 144 000 for the
Deezer-like graph, 335 000 for the Amazon-like one.
"""

from __future__ import annotations

from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery

__all__ = ["kstar_query", "q2star", "q3star"]


def kstar_query(k: int, graph: Graph, name: str = "") -> KStarQuery:
    """A k-star counting query over the full node range of ``graph``."""
    return KStarQuery(
        k=k,
        low=0,
        high=graph.num_nodes - 1,
        name=name or f"Q{k}*",
    )


def q2star(graph: Graph) -> KStarQuery:
    """Q2*: the 2-star (path of length two) counting query."""
    return kstar_query(2, graph, name="Q2*")


def q3star(graph: Graph) -> KStarQuery:
    """Q3*: the 3-star counting query."""
    return kstar_query(3, graph, name="Q3*")
