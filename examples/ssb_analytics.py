"""OLAP analytics under DP: compare PM with the R2T and LS baselines.

The scenario mirrors the paper's motivation: an analyst wants counts, revenue
sums and a GROUP BY breakdown from a star-schema warehouse whose Customer /
Supplier / Part tables contain personal data.  The script answers all nine
SSB evaluation queries with the Predicate Mechanism and with the two
strongest baselines, and prints a Table-1-style comparison (relative error in
percent, averaged over a few runs).

Run it with ``python examples/ssb_analytics.py``.
"""

from __future__ import annotations

import numpy as np

from repro import PrivacyScenario, generate_ssb
from repro.db.executor import QueryExecutor
from repro.evaluation.metrics import answer_relative_error
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.workloads.ssb_queries import SSB_QUERY_NAMES, ssb_query

EPSILON = 0.5
TRIALS = 5
MECHANISMS = ("PM", "R2T", "LS")


def main() -> None:
    print("Generating SSB data...")
    database = generate_ssb(scale_factor=1.0, seed=11, rows_per_scale_factor=240_000)
    scenario = PrivacyScenario.dimensions("Customer", "Supplier", "Part")
    executor = QueryExecutor(database)

    rows = []
    for query_name in SSB_QUERY_NAMES:
        query = ssb_query(query_name)
        exact = executor.execute(query)
        row = {"query": query_name}
        for mechanism_name in MECHANISMS:
            mechanism = make_star_mechanism(mechanism_name, EPSILON, scenario=scenario)
            evaluation = evaluate_mechanism(
                mechanism, database, query, trials=TRIALS, rng=hash(query_name) % 1000,
                exact_answer=exact,
            )
            if evaluation.unsupported:
                row[mechanism_name] = "not supported"
            else:
                row[mechanism_name] = f"{evaluation.mean_relative_error:.1f}%"
        rows.append(row)

    print(f"\nRelative error at epsilon = {EPSILON} ({TRIALS} runs per cell)\n")
    print(
        format_table(
            ["query", *MECHANISMS],
            [[row["query"], *[row[m] for m in MECHANISMS]] for row in rows],
        )
    )

    # A concrete drill-down: the GROUP BY query Qg2 under PM.
    print("\nPrivate GROUP BY example (Qg2, sum of revenue by year and brand):")
    query = ssb_query("Qg2")
    exact_groups = executor.execute(query)
    mechanism = make_star_mechanism("PM", EPSILON, scenario=scenario, rng=3)
    noisy_groups = mechanism.answer_value(database, query, rng=3)
    error = answer_relative_error(exact_groups, noisy_groups)
    shown = sorted(noisy_groups.groups.items())[:5]
    for key, value in shown:
        print(f"  {key}: {value:,.0f}")
    print(f"  ... {len(noisy_groups)} groups total, L1 relative error {error:.1f}%")


if __name__ == "__main__":
    main()
