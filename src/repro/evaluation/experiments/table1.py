"""Table 1: relative error of PM, R2T and LS on the SSB queries.

For every privacy budget ε ∈ {0.1, 0.2, 0.5, 0.8, 1} and every SSB query
(Qc1–Qc4, Qs2–Qs4, Qg2, Qg4) the driver reports the mean relative error of
the three mechanisms over repeated runs.  Combinations the baselines cannot
answer — LS on SUM / GROUP BY, R2T on GROUP BY — appear as ``not supported``,
exactly like the paper's table.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.db.executor import QueryExecutor
from repro.workloads.ssb_queries import SSB_QUERY_NAMES, ssb_query

__all__ = ["run", "cells", "MECHANISMS"]

MECHANISMS = ("PM", "R2T", "LS")


def cells(
    config: ExperimentConfig,
    query_names: Sequence[str] = SSB_QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> list[StarCell]:
    """The cell grid of Table 1, in row order."""
    return [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(config,),
            stream=("table1", epsilon, mechanism_name, query_name),
        )
        for epsilon in config.epsilons
        for mechanism_name in mechanisms
        for query_name in query_names
    ]


def run(
    config: Optional[ExperimentConfig] = None,
    query_names: Sequence[str] = SSB_QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Table 1.

    Returns one row per (ε, mechanism, query) with the mean relative error in
    percent (``None`` when the combination is unsupported).
    """
    config = config or ExperimentConfig()
    # Build the database (and its exact answers) before the scheduler forks,
    # so workers inherit the warm engine caches.
    database = build_ssb_database(config)
    executor = QueryExecutor(database)
    for query_name in query_names:
        executor.execute(ssb_query(query_name))

    result = ExperimentResult(
        title="Table 1: relative error (%) of PM, R2T, LS on SSB queries by varying epsilon",
        notes=(
            f"SSB scale factor {config.scale_factor} "
            f"({database.num_fact_rows} fact rows), {config.trials} trials per cell, "
            f"private dimensions: {', '.join(config.private_dimensions)}."
        ),
    )
    grid = cells(config, query_names=query_names, mechanisms=mechanisms)
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        result.add_row(
            epsilon=cell.epsilon,
            mechanism=cell.mechanism,
            query=cell.query_args[0],
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
            supported=not evaluation.unsupported,
            mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
        )
    return result
