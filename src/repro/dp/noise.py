"""Noise primitives used by every mechanism in the library.

All samplers take an explicit ``rng`` argument (seed, generator or ``None``)
so experiments are reproducible, and all scales are expressed in the
sensitivity/ε parametrisation used by the paper:

* Laplace mechanism — noise ``Lap(GS_Q / ε)`` (Theorem 3.2), variance
  ``2 (GS_Q / ε)²``.
* General Cauchy mechanism — used with smooth/local sensitivity; with γ = 4
  the paper quotes a noise level of ``(10 · LS / ε)²``.
* Geometric (discrete Laplace) — used when a perturbed value must stay on an
  integer lattice, e.g. the optional discrete variant of predicate
  perturbation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PrivacyBudgetError, SensitivityError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "laplace_scale",
    "laplace_noise",
    "laplace_variance",
    "cauchy_scale_for_epsilon",
    "cauchy_noise",
    "geometric_noise",
]


def _check_epsilon(epsilon: float) -> float:
    if not np.isfinite(epsilon) or epsilon <= 0:
        raise PrivacyBudgetError(f"privacy budget ε must be positive, got {epsilon!r}")
    return float(epsilon)


def _check_sensitivity(sensitivity: float) -> float:
    if not np.isfinite(sensitivity) or sensitivity < 0:
        raise SensitivityError(f"sensitivity must be finite and non-negative, got {sensitivity!r}")
    return float(sensitivity)


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Scale ``b = sensitivity / ε`` of the Laplace mechanism."""
    return _check_sensitivity(sensitivity) / _check_epsilon(epsilon)


def laplace_variance(sensitivity: float, epsilon: float) -> float:
    """Variance ``2 (sensitivity/ε)²`` of the Laplace mechanism."""
    scale = laplace_scale(sensitivity, epsilon)
    return 2.0 * scale * scale


def laplace_noise(
    sensitivity: float,
    epsilon: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | float:
    """Draw Laplace noise ``Lap(sensitivity / ε)``.

    Returns a scalar when ``size`` is ``None``.
    """
    generator = ensure_rng(rng)
    scale = laplace_scale(sensitivity, epsilon)
    if scale == 0.0:
        return 0.0 if size is None else np.zeros(size)
    sample = generator.laplace(loc=0.0, scale=scale, size=size)
    return float(sample) if size is None else sample


def cauchy_scale_for_epsilon(
    sensitivity: float, epsilon: float, gamma: float = 4.0
) -> float:
    """Scale of the general Cauchy mechanism calibrated to a smooth bound.

    The mechanism adds ``Cauchy(LS / β)`` noise with ``β = ε / (2(γ + 1))``
    (Section 4 of the paper); the returned value is ``LS / β``.
    """
    if gamma <= 0:
        raise SensitivityError(f"Cauchy γ must be positive, got {gamma!r}")
    beta = _check_epsilon(epsilon) / (2.0 * (gamma + 1.0))
    return _check_sensitivity(sensitivity) / beta


def cauchy_noise(
    sensitivity: float,
    epsilon: float,
    gamma: float = 4.0,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | float:
    """Draw noise from the general Cauchy mechanism.

    ``sensitivity`` is the smooth/local-sensitivity bound; the noise is
    ``scale · T`` where ``T`` follows a standard Cauchy distribution (γ = 4
    corresponds to the paper's ``Var(Cauchy(·)) = 1`` convention).
    """
    generator = ensure_rng(rng)
    scale = cauchy_scale_for_epsilon(sensitivity, epsilon, gamma)
    if scale == 0.0:
        return 0.0 if size is None else np.zeros(size)
    sample = generator.standard_cauchy(size=size) * scale
    return float(sample) if size is None else sample


def geometric_noise(
    sensitivity: float,
    epsilon: float,
    size: int | tuple[int, ...] | None = None,
    rng: RngLike = None,
) -> np.ndarray | int:
    """Two-sided geometric (discrete Laplace) noise with parameter e^{-ε/Δ}.

    Adds integer-valued noise; used when the perturbed quantity must remain
    integral (e.g. an ordinal predicate code).
    """
    generator = ensure_rng(rng)
    sensitivity = _check_sensitivity(sensitivity)
    epsilon = _check_epsilon(epsilon)
    if sensitivity == 0.0:
        return 0 if size is None else np.zeros(size, dtype=np.int64)
    alpha = np.exp(-epsilon / sensitivity)
    shape = (1,) if size is None else size
    # Difference of two geometric variables is two-sided geometric.
    plus = generator.geometric(p=1.0 - alpha, size=shape) - 1
    minus = generator.geometric(p=1.0 - alpha, size=shape) - 1
    noise = plus - minus
    if size is None:
        return int(noise[0])
    return noise.astype(np.int64)
