"""Demo (and CI smoke test) of the observability subsystem.

Serves a small grid of queries twice — once untraced, once with request
tracing and a slow-query log switched on — and asserts the contracts
docs/OBSERVABILITY.md promises:

* every served answer is byte-identical with telemetry on and off;
* one traced request produces one connected JSONL trace whose spans cover
  serve → plan → execute → mechanism trials (and engine kernels on cold
  runs), with no orphan spans;
* ``python -m repro.obs.summarize`` renders a per-stage latency table and
  the critical path from the trace file;
* the ``telemetry`` op returns the unified counters/gauges/histograms
  snapshot plus Prometheus exposition text;
* the slow-query log records per-stage timings for requests over the
  threshold (0 ms here, so every request qualifies).

Exits non-zero if any step misbehaves, which is what lets CI use it as the
observability smoke.

Run with::

    PYTHONPATH=src python examples/observability_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro.dp.accountant import PrivacyBudget
from repro.obs import summarize
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import trace_scope
from repro.serving import (
    BudgetLedger,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
)

#: The small serving grid: (mechanism, query, epsilon).
GRID = [
    ("PM", "Qc1", 0.3),
    ("PM", "Qc3", 0.2),
    ("R2T", "Qs2", 0.4),
]


def serve_grid(planner, slow_query_log=None) -> list[dict]:
    """Serve every grid cell on a fresh server; returns the payloads."""
    server = QueryServer(
        planner,
        BudgetLedger(PrivacyBudget(10.0)),
        port=0,
        workers=2,
        slow_query_log=slow_query_log,
    )
    payloads = []
    with ServerThread(server):
        with ServingClient(port=server.port) as client:
            for mechanism, query, epsilon in GRID:
                payloads.append(
                    client.query("demo", mechanism, epsilon, query=query, analyst="ci")
                )
            telemetry = client.telemetry()
    return payloads, telemetry


def main() -> int:
    planner = QueryPlanner(seed=7)
    planner.register("demo", "ssb", scale_factor=1.0, rows_per_scale_factor=4000, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        slow_path = Path(tmp) / "slow.jsonl"

        untraced, _ = serve_grid(planner)
        print(f"served {len(untraced)} untraced request(s)")

        # Same grid again with tracing and the slow-query log on (threshold
        # 0 ms: every request records, so the log's stage breakdown is
        # exercised deterministically).
        slow_log = SlowQueryLog(str(slow_path), threshold_ms=0.0)
        with trace_scope(str(trace_path)):
            traced, telemetry = serve_grid(planner, slow_query_log=slow_log)

        # 1. Telemetry never changes an answer.
        for before, after in zip(untraced, traced):
            assert before["answer"] == after["answer"], "tracing changed an answer"
            assert before.get("answers") == after.get("answers"), "tracing changed bytes"
        print("answers byte-identical with tracing on and off")

        # 2. The trace is connected and covers every serving stage.
        spans = summarize.load_spans(str(trace_path))
        names = {record["name"] for record in spans}
        for stage in ("serve.request", "serve.plan", "serve.execute", "mechanism.trials"):
            assert stage in names, f"stage {stage!r} missing from the trace"
        orphans = summarize.orphan_spans(spans)
        assert not orphans, f"orphan spans: {orphans}"
        roots = [r for r in spans if r["name"] == "serve.request"]
        assert len(roots) == len(GRID), "expected one root span per request"
        print(f"trace: {len(spans)} span(s), {len(roots)} request trace(s), 0 orphans")

        # 3. The summarize CLI renders all stages and the critical path.
        assert summarize.main([str(trace_path)]) == 0
        rendered = summarize.render(spans, str(trace_path))
        for stage in ("serve.request", "serve.plan", "serve.execute"):
            assert stage in rendered, f"summarize lost stage {stage!r}"
        assert "critical path" in rendered

        # 4. The telemetry op exposes the unified snapshot + Prometheus text.
        snapshot = telemetry["telemetry"]
        assert tuple(snapshot.keys()) == ("counters", "gauges", "histograms", "subsystem")
        assert snapshot["counters"]["serving_requests_total"] >= len(GRID)
        assert snapshot["histograms"]["serving_request_seconds"]["count"] >= len(GRID)
        assert "repro_serving_serving_requests_total" in telemetry["prometheus"]
        print(
            "telemetry op: "
            f"{snapshot['counters']['serving_requests_total']} requests, "
            f"p95 {snapshot['histograms']['serving_request_seconds']['p95_s'] * 1000:.1f} ms"
        )

        # 5. The slow-query log carries trace ids and per-stage timings.
        records = [
            json.loads(line) for line in slow_path.read_text().splitlines() if line
        ]
        assert len(records) == len(GRID), "every request should cross the 0ms threshold"
        trace_ids = {r["trace_id"] for r in records}
        assert trace_ids <= {r["trace_id"] for r in spans}, "slow log lost its trace link"
        assert all("serve.execute" in r["stages_ms"] for r in records)
        print(f"slow-query log: {len(records)} record(s) with per-stage timings")

    print("observability demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
