"""Smoke tests for every experiment driver (tiny configurations).

These tests check that each table/figure driver runs end to end, produces the
expected columns and rows, and exhibits the coarse qualitative behaviour the
paper reports (e.g. "not supported" cells, PM ≪ LS).  The full-size runs live
in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.evaluation.experiments import (
    ExperimentConfig,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        epsilons=(0.1, 1.0),
        trials=2,
        scale_factor=1.0,
        rows_per_scale_factor=8000,
        seed=7,
    )


def _errors(result, **criteria):
    rows = result.filter(**criteria).rows
    return [row["relative_error_pct"] for row in rows if row["relative_error_pct"] is not None]


class TestTable1:
    def test_structure_and_unsupported_cells(self, tiny_config):
        result = table1.run(tiny_config, query_names=("Qc1", "Qs2", "Qg2"))
        # 2 epsilons x 3 mechanisms x 3 queries.
        assert len(result) == 18
        ls_sum = result.filter(mechanism="LS", query="Qs2").rows
        assert all(not row["supported"] for row in ls_sum)
        r2t_group = result.filter(mechanism="R2T", query="Qg2").rows
        assert all(not row["supported"] for row in r2t_group)
        pm_rows = result.filter(mechanism="PM").rows
        assert all(row["supported"] for row in pm_rows)

    def test_pm_beats_ls_on_counts(self, tiny_config):
        result = table1.run(tiny_config, query_names=("Qc2",), mechanisms=("PM", "LS"))
        pm = np.mean(_errors(result, mechanism="PM"))
        ls = np.mean(_errors(result, mechanism="LS"))
        assert pm < ls


class TestTable2:
    def test_structure(self, tiny_config):
        result = table2.run(tiny_config, graph_scale=0.01, epsilons=(0.5,))
        # 2 datasets x 2 queries x 1 epsilon x 3 mechanisms.
        assert len(result) == 12
        assert set(result.column("mechanism")) == {"PM", "R2T", "TM"}
        assert all(row["mean_time_s"] >= 0 for row in result.rows)


class TestScalingFigures:
    def test_figure4_rows(self, tiny_config):
        result = figure4.run(tiny_config, scales=(0.5, 1.0), query_names=("Qc1",))
        assert len(result) == 2 * 1 * 3
        assert {row["scale"] for row in result.rows} == {0.5, 1.0}
        pm_rows = result.filter(mechanism="PM").rows
        assert all(row["relative_error_pct"] is not None for row in pm_rows)

    def test_figure5_rows(self, tiny_config):
        result = figure5.run(tiny_config, scales=(1.0,), query_names=("Qs2",))
        assert len(result) == 2
        assert set(result.column("mechanism")) == {"PM", "R2T"}


class TestFigure6:
    def test_pm_flat_ls_grows(self, tiny_config):
        result = figure6.run(tiny_config, gs_bounds=(1e5, 1e7), query_names=("Qc2",))
        pm = _errors(result, mechanism="PM")
        ls = _errors(result, mechanism="LS")
        # PM does not depend on the bound; LS error grows by orders of magnitude.
        assert max(pm) < 10 * max(min(pm), 1e-9) or max(pm) < 50
        assert ls[1] > ls[0]


class TestDistributionFigures:
    def test_figure7_rows(self, tiny_config):
        result = figure7.run(
            tiny_config, distributions=("uniform", "zipf"), scales=(1.0,), query_names=("Qc3",)
        )
        assert {row["distribution"] for row in result.rows} == {"uniform", "zipf"}

    def test_figure11_rows(self, tiny_config):
        result = figure11.run(
            tiny_config,
            mixtures=figure11.MIXTURES[:2],
            epsilons=(0.5,),
            query_names=("Qc3",),
            mechanisms=("PM",),
        )
        assert len(result) == 2


class TestFigure8:
    def test_domain_products_increase(self, tiny_config):
        result = figure8.run(tiny_config, mechanisms=("PM",))
        products = [row["domain_product"] for row in result.rows]
        assert products == sorted(products)


class TestFigure9:
    def test_wd_and_pm_reported(self, tiny_config):
        result = figure9.run(tiny_config, epsilons=(0.5,))
        assert {row["mechanism"] for row in result.rows} == {"PM", "WD"}
        assert {row["workload"] for row in result.rows} == {"W1", "W2"}


class TestFigure10:
    def test_snowflake_queries_reported(self, tiny_config):
        result = figure10.run(tiny_config, epsilons=(0.5,))
        assert {row["query"] for row in result.rows} == {"Qtc", "Qts"}
        assert {row["mechanism"] for row in result.rows} == {"PM", "R2T", "LS"}
        ls_sum_rows = result.filter(query="Qts", mechanism="LS").rows
        assert all(row["relative_error_pct"] is None for row in ls_sum_rows)
