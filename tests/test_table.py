"""Unit tests for columnar tables."""

import numpy as np
import pytest

from repro.db.domains import AttributeDomain
from repro.db.table import Column, Table
from repro.exceptions import DomainError, SchemaError


@pytest.fixture()
def color_domain():
    return AttributeDomain.categorical("color", ("red", "green", "blue"))


class TestColumn:
    def test_plain_column(self):
        column = Column("x", np.array([1.0, 2.0, 3.0]))
        assert column.num_rows == 3
        assert column.domain is None

    def test_encoded_column_validates_codes(self, color_domain):
        with pytest.raises(DomainError):
            Column("color", np.array([0, 1, 5]), domain=color_domain)
        with pytest.raises(DomainError):
            Column("color", np.array([-1, 0]), domain=color_domain)

    def test_from_raw_encodes(self, color_domain):
        column = Column.from_raw("color", ["blue", "red"], domain=color_domain)
        assert list(column.values) == [2, 0]

    def test_decoded_roundtrip(self, color_domain):
        column = Column.from_raw("color", ["blue", "red", "green"], domain=color_domain)
        assert column.decoded() == ["blue", "red", "green"]

    def test_two_dimensional_values_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", np.zeros((2, 2)))

    def test_take_and_mask(self, color_domain):
        column = Column.from_raw("color", ["blue", "red", "green"], domain=color_domain)
        assert column.take(np.array([2, 0])).decoded() == ["green", "blue"]
        assert column.mask(np.array([True, False, True])).decoded() == ["blue", "green"]


class TestTable:
    @pytest.fixture()
    def table(self, color_domain):
        return Table(
            "Paint",
            [
                Column("id", np.arange(4)),
                Column.from_raw("color", ["red", "green", "red", "blue"], domain=color_domain),
                Column("price", np.array([1.5, 2.5, 3.5, 4.5])),
            ],
        )

    def test_basic_accessors(self, table):
        assert table.num_rows == 4
        assert len(table) == 4
        assert table.column_names == ["id", "color", "price"]
        assert "color" in table
        assert "weight" not in table

    def test_column_lookup_error(self, table):
        with pytest.raises(SchemaError):
            table.column("weight")

    def test_codes_and_domain(self, table, color_domain):
        assert list(table.codes("color")) == [0, 1, 0, 2]
        assert table.domain("color") is color_domain
        assert table.domain("price") is None

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table("Bad", [Column("a", np.arange(3)), Column("b", np.arange(4))])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table("Bad", [Column("a", np.arange(3)), Column("a", np.arange(3))])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            Table("Empty", [])

    def test_filter(self, table):
        filtered = table.filter(np.array([True, False, True, False]))
        assert filtered.num_rows == 2
        assert list(filtered.codes("id")) == [0, 2]

    def test_filter_wrong_length_rejected(self, table):
        with pytest.raises(SchemaError):
            table.filter(np.array([True, False]))

    def test_take_preserves_order(self, table):
        taken = table.take(np.array([3, 0]))
        assert list(taken.codes("id")) == [3, 0]

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 4

    def test_row_decodes_values(self, table):
        row = table.row(3)
        assert row == {"id": 3, "color": "blue", "price": 4.5}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(10)

    def test_to_records(self, table):
        records = table.to_records()
        assert len(records) == 4
        assert records[1]["color"] == "green"

    def test_from_records_roundtrip(self, color_domain):
        records = [
            {"id": 0, "color": "red"},
            {"id": 1, "color": "blue"},
        ]
        table = Table.from_records("Paint", records, domains={"color": color_domain})
        assert table.to_records() == records

    def test_from_arrays(self, color_domain):
        table = Table.from_arrays(
            "Paint",
            {"id": np.arange(2), "color": np.array([0, 2])},
            domains={"color": color_domain},
        )
        assert table.row(1)["color"] == "blue"

    def test_from_records_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_records("Empty", [])
