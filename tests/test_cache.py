"""Suite for the pluggable cache-backend layer (:mod:`repro.db.cache`).

Covers the backend protocol and both implementations, the content-derived
namespacing, the statistics counters, and the two guarantees the execution
layer builds on (see docs/CACHE.md):

* every backend serves values bit-identical to what the caller would have
  recomputed (the engine consistency suite in ``test_engine.py`` pins the
  end-to-end half of this);
* ``invalidate()`` after an in-place database mutation leaves no stale cube,
  mask or memoized answer reachable — regardless of backend — and resets the
  stats counters.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.db.cache import (
    BOUNDED_REGIONS,
    CacheBackend,
    CacheStats,
    LocalCacheBackend,
    LruCache,
    REGIONS,
    SharedMemoryCacheBackend,
    active_backend,
    backend_scope,
    database_fingerprint,
    make_backend,
    set_active_backend,
)
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.db.join import execute_by_materialised_join
from repro.datagen.ssb import ssb_schema
from repro.workloads.ssb_queries import ssb_query


@pytest.fixture()
def shared_backend():
    backend = SharedMemoryCacheBackend(max_entries=32, max_shared_entries=64)
    yield backend
    backend.close()


def _make(name: str):
    """Build a small backend by name; caller closes shared ones."""
    return make_backend(name, max_entries=32)


def _close(backend) -> None:
    close = getattr(backend, "close", None)
    if close is not None:
        close()


# ----------------------------------------------------------------------
# protocol + registry
# ----------------------------------------------------------------------
class TestProtocol:
    @pytest.mark.parametrize("name", ["local", "shared"])
    def test_backends_satisfy_protocol(self, name):
        backend = _make(name)
        try:
            assert isinstance(backend, CacheBackend)
            assert backend.name == name
        finally:
            _close(backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("redis")

    def test_every_engine_region_is_declared(self):
        # The engine's regions and the registry must not drift apart.
        assert BOUNDED_REGIONS <= set(REGIONS)

    def test_active_backend_scope(self):
        original = active_backend()
        replacement = LocalCacheBackend(8)
        with backend_scope(replacement):
            assert active_backend() is replacement
        assert active_backend() is original

    def test_set_active_backend_returns_previous(self):
        original = active_backend()
        replacement = LocalCacheBackend(8)
        assert set_active_backend(replacement) is original
        assert set_active_backend(original) is replacement
        assert active_backend() is original


# ----------------------------------------------------------------------
# LRU + stats
# ----------------------------------------------------------------------
class TestLruCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        assert cache.put("c", 3) == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_reports_eviction_count(self):
        cache = LruCache(1)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 1
        assert len(cache) == 1


class TestStatsCounters:
    @pytest.mark.parametrize("name", ["local", "shared"])
    def test_hit_miss_put_counters(self, name):
        backend = _make(name)
        try:
            assert backend.get("ns", "cube", "k") is None
            backend.put("ns", "cube", "k", 1.5)
            assert backend.get("ns", "cube", "k") == 1.5
            stats = backend.stats()
            assert stats.misses == 1 and stats.hits == 1 and stats.puts == 1
            backend.reset_stats()
            zeroed = backend.stats()
            assert (zeroed.hits, zeroed.misses, zeroed.puts) == (0, 0, 0)
        finally:
            _close(backend)

    def test_local_eviction_counter(self):
        backend = LocalCacheBackend(max_entries=2)
        for index in range(4):
            backend.put("ns", "result", index, float(index))
        assert backend.stats().evictions == 2
        assert backend.entry_count("ns") == 2

    def test_unbounded_region_never_evicts(self):
        backend = LocalCacheBackend(max_entries=2)
        for index in range(10):
            backend.put("ns", "cube", index, float(index))
        assert backend.stats().evictions == 0
        assert backend.entry_count("ns") == 10

    def test_stats_addition_and_rates(self):
        total = CacheStats(hits=3, misses=1) + CacheStats(hits=1, misses=3, shared_hits=2)
        assert total.hits == 4 and total.misses == 4 and total.shared_hits == 2
        assert total.hit_rate == 0.5
        assert "hits=4" in total.summary()


# ----------------------------------------------------------------------
# namespacing
# ----------------------------------------------------------------------
class TestNamespaces:
    @pytest.mark.parametrize("name", ["local", "shared"])
    def test_namespaces_are_isolated(self, name):
        backend = _make(name)
        try:
            backend.put("ns-a", "result", "k", 1.0)
            assert backend.get("ns-b", "result", "k") is None
            backend.put("ns-b", "result", "k", 2.0)
            assert backend.get("ns-a", "result", "k") == 1.0
            backend.clear("ns-a")
            assert backend.get("ns-a", "result", "k") is None
            assert backend.get("ns-b", "result", "k") == 2.0
        finally:
            _close(backend)

    def test_namespace_count_is_bounded(self):
        backend = LocalCacheBackend(max_entries=4, max_namespaces=2)
        backend.put("ns-a", "cube", "k", 1.0)
        backend.put("ns-b", "cube", "k", 2.0)
        backend.put("ns-c", "cube", "k", 3.0)  # evicts ns-a (least recent)
        assert backend.get("ns-a", "cube", "k") is None
        assert backend.get("ns-b", "cube", "k") == 2.0
        assert backend.get("ns-c", "cube", "k") == 3.0
        assert backend.stats().evictions == 1

    def test_namespace_eviction_is_least_recently_used(self):
        backend = LocalCacheBackend(max_entries=4, max_namespaces=2)
        backend.put("ns-a", "cube", "k", 1.0)
        backend.put("ns-b", "cube", "k", 2.0)
        assert backend.get("ns-a", "cube", "k") == 1.0  # freshen ns-a
        backend.put("ns-c", "cube", "k", 3.0)  # now ns-b is the oldest
        assert backend.get("ns-b", "cube", "k") is None
        assert backend.get("ns-a", "cube", "k") == 1.0

    def test_database_fingerprint_is_content_derived(self, ssb_small, tiny_db):
        first = database_fingerprint(ssb_small)
        assert first == database_fingerprint(ssb_small)  # deterministic
        assert first == ssb_small.cache_fingerprint()
        assert first != database_fingerprint(tiny_db)

    def test_content_digest_covers_domains(self):
        """Equal code arrays over different domains are different content:
        the domain decodes GROUP BY labels and predicate values, so sharing
        a namespace across domains would serve wrong decoded answers."""
        from repro.db.domains import AttributeDomain
        from repro.db.table import Column, Table

        codes = np.array([0, 1, 2])
        nineties = AttributeDomain.from_values("year", (1992, 1993, 1994))
        aughts = AttributeDomain.from_values("year", (2000, 2001, 2002))
        first = Table("T", [Column("year", codes.copy(), domain=nineties)])
        second = Table("T", [Column("year", codes.copy(), domain=aughts)])
        assert first.content_digest() != second.content_digest()

    def test_fingerprint_changes_when_content_changes(self, tiny_db):
        before = database_fingerprint(tiny_db)
        codes = tiny_db.fact.codes("ColorKey")
        original = int(codes[0])
        codes[0] = (original + 1) % 6
        try:
            # The fingerprint is memoized per instance; mutation is only
            # visible through refresh=True (what invalidate() passes).
            assert database_fingerprint(tiny_db) == before
            assert database_fingerprint(tiny_db, refresh=True) != before
        finally:
            codes[0] = original
        assert database_fingerprint(tiny_db, refresh=True) == before


# ----------------------------------------------------------------------
# the shared backend's cross-process tier
# ----------------------------------------------------------------------
def _shared_worker_read(key):
    """Importable pool entry point: read a key through the active backend."""
    backend = active_backend()
    return backend.get("ns", "cube", key)


def _shared_worker_write(payload):
    key, value = payload
    active_backend().put("ns", "cube", key, np.asarray(value, dtype=np.float64))
    return True


class TestSharedBackend:
    def test_value_round_trip_preserves_bits(self, shared_backend):
        values = np.array([1.25, -3.5e300, 0.0, 7e-17])
        shared_backend.put("ns", "cube", "k", values)
        shared_backend._local.clear()  # force the L2 path
        fetched = shared_backend.get("ns", "cube", "k")
        np.testing.assert_array_equal(fetched, values)
        assert not fetched.flags.writeable  # frozen on promotion
        assert shared_backend.stats().shared_hits == 1

    def test_unshared_region_stays_local(self, shared_backend):
        shared_backend.put("ns", "predicate_mask", "k", np.ones(3, dtype=bool))
        shared_backend._local.clear()
        assert shared_backend.get("ns", "predicate_mask", "k") is None
        assert shared_backend.stats().shared_puts == 0

    def test_workers_share_entries_with_each_other(self, shared_backend):
        context = multiprocessing.get_context("fork")
        with backend_scope(shared_backend):
            # The write happens in a worker forked *before* the entry exists,
            # so neither the parent's L1 nor any later fork inherits it …
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                assert list(pool.map(_shared_worker_write, [("post-fork", [4.0, 2.0])]))
            # … and a worker of a second pool (a different process by
            # construction) can only obtain it through the cross-process tier.
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                reads = list(pool.map(_shared_worker_read, ["post-fork"] * 2))
        for fetched in reads:
            np.testing.assert_array_equal(fetched, [4.0, 2.0])
        assert shared_backend.stats().shared_hits > 0

    def test_shared_tier_eviction_bounds_entries(self):
        backend = SharedMemoryCacheBackend(max_entries=4, max_shared_entries=8)
        try:
            for index in range(20):
                backend.put("ns", "result", index, float(index))
            assert len(backend._store) <= 8
            assert backend.stats().shared_evictions >= 12
        finally:
            backend.close()

    def test_degrades_to_local_after_manager_loss(self):
        backend = SharedMemoryCacheBackend(max_entries=4)
        backend._manager.shutdown()
        backend._broken = False  # simulate a worker that has not noticed yet
        backend.put("ns", "result", "k", 1.0)  # must not raise
        assert backend._broken
        assert backend.get("ns", "result", "k") == 1.0  # L1 still serves


# ----------------------------------------------------------------------
# invalidate(): stale entries + stats, on every backend
# ----------------------------------------------------------------------
class TestInvalidate:
    @pytest.mark.parametrize("name", ["local", "shared"])
    def test_mutation_then_invalidate_leaves_no_stale_answer(self, ssb_small, name):
        backend = _make(name)
        try:
            engine = ExecutionEngine(ssb_small, backend=backend)
            executor = QueryExecutor(ssb_small, engine=engine)
            query = ssb_query("Qc1", ssb_schema())
            stale_answer = executor.execute(query)
            stale_mask = engine.selection_mask(query.predicates)

            # Mutate the instance in place: move every Date row to year code
            # 0, which changes Qc1's ``year = 1993`` selection to either the
            # empty set or every fact row, then follow the documented rule.
            year_codes = ssb_small.dimensions["Date"].codes("year")
            saved = year_codes.copy()
            year_codes[:] = 0
            try:
                engine.invalidate()
                fresh_answer = executor.execute(query)
                fresh_mask = engine.selection_mask(query.predicates)
                reference = execute_by_materialised_join(ssb_small, query)
                assert fresh_answer == reference
                assert fresh_answer != stale_answer
                assert not np.array_equal(fresh_mask, stale_mask)
                # The cube-backed COUNT path must also see fresh content.
                assert engine.count_answer_via_cube(query) == reference
            finally:
                year_codes[:] = saved
                engine.invalidate()
            assert executor.execute(query) == stale_answer
        finally:
            _close(backend)

    def test_invalidate_resets_stats_and_changes_namespace(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        query = ssb_query("Qc2", ssb_schema())
        engine.selection_mask(query.predicates)
        engine.selection_mask(query.predicates)
        assert engine.stats().hits > 0
        before = engine.namespace
        engine.invalidate()
        stats = engine.stats()
        assert (stats.hits, stats.misses, stats.puts, stats.evictions) == (0, 0, 0, 0)
        assert engine.namespace == before  # content unchanged -> same namespace
        assert engine.backend.entry_count(before) == 0


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineBackendIntegration:
    def test_direct_engines_have_private_local_backends(self, ssb_small):
        first = ExecutionEngine(ssb_small)
        second = ExecutionEngine(ssb_small)
        assert first.backend is not second.backend
        query = ssb_query("Qc1", ssb_schema())
        first.selection_mask(query.predicates)
        assert second.backend.entry_count(second.namespace) == 0

    def test_dead_database_namespace_is_released(self):
        """for_database engines reclaim their in-process cache storage when
        their database is garbage-collected, like the pre-backend per-engine
        caches did."""
        import gc

        from repro.datagen.ssb import SSBConfig, SSBGenerator

        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            database = SSBGenerator(
                SSBConfig(scale_factor=0.05, rows_per_scale_factor=2000, seed=99)
            ).build()
            engine = ExecutionEngine.for_database(database)
            namespace = engine.namespace
            engine.fan_out("Customer")
            assert backend.entry_count(namespace) > 0
            del engine, database
            gc.collect()
            assert backend.entry_count(namespace) == 0

    def test_released_namespace_tracks_invalidation(self):
        """After invalidate() rebinds the namespace, database GC must release
        the *current* namespace, not the one captured at engine creation."""
        import gc

        from repro.datagen.ssb import SSBConfig, SSBGenerator

        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            database = SSBGenerator(
                SSBConfig(scale_factor=0.05, rows_per_scale_factor=2000, seed=98)
            ).build()
            engine = ExecutionEngine.for_database(database)
            year_codes = database.dimensions["Date"].codes("year")
            year_codes[:] = 0  # mutate -> invalidate rebinds the namespace
            engine.invalidate()
            fresh_namespace = engine.namespace
            engine.fan_out("Customer")
            assert backend.entry_count(fresh_namespace) > 0
            del engine, database, year_codes
            gc.collect()
            assert backend.entry_count(fresh_namespace) == 0

    def test_release_keeps_shared_tier(self, shared_backend):
        shared_backend.put("ns", "cube", "k", 1.0)
        shared_backend.release("ns")
        assert ("ns", "cube", "k") in shared_backend._store  # L2 intact
        shared_backend._local.clear()
        assert shared_backend.get("ns", "cube", "k") == 1.0  # re-served from L2

    def test_shared_engine_follows_the_active_backend(self, ssb_small):
        engine = ExecutionEngine.for_database(ssb_small)
        replacement = LocalCacheBackend(16)
        with backend_scope(replacement):
            assert engine.backend is replacement
            engine.fan_out("Customer")
            assert replacement.entry_count(engine.namespace) > 0
        assert engine.backend is not replacement

    def test_engine_answers_identical_across_backends(self, ssb_small):
        queries = [ssb_query(name, ssb_schema()) for name in ("Qc1", "Qs2", "Qg2")]
        shared = SharedMemoryCacheBackend(max_entries=64)
        try:
            answers = {}
            for label, backend in (("local", LocalCacheBackend(64)), ("shared", shared)):
                engine = ExecutionEngine(ssb_small, backend=backend)
                executor = QueryExecutor(ssb_small, engine=engine)
                answers[label] = [executor.execute(query) for query in queries]
                # Run every query twice so the second pass is cache-served.
                for query, first in zip(queries, answers[label]):
                    again = executor.execute(query)
                    if hasattr(first, "groups"):
                        assert again.groups == first.groups
                    else:
                        assert again == first
            for local_answer, shared_answer in zip(answers["local"], answers["shared"]):
                if hasattr(local_answer, "groups"):
                    assert local_answer.groups == shared_answer.groups
                else:
                    assert local_answer == shared_answer
        finally:
            shared.close()

    def test_repr_exposes_counters(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        engine.selection_mask(ssb_query("Qc1", ssb_schema()).predicates)
        text = repr(engine)
        assert "hits=" in text and "misses=" in text and "evictions=" in text
        assert "backend=local" in text
