"""Table 2: PM, R2T and TM on k-star counting queries (Deezer / Amazon).

For ε ∈ {0.1, 0.5, 1} the driver reports, per dataset (a Deezer-like and an
Amazon-like synthetic graph) and per query (Q2*, Q3*), the mean relative
error and mean running time of the three mechanisms — the same cells as the
paper's Table 2.  The graph scale defaults to a fraction of the original
datasets so the whole table regenerates in seconds; pass ``graph_scale=1.0``
for full-size graphs.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.evaluation.experiments.common import ExperimentConfig
from repro.evaluation.parallel import (
    KStarCell,
    scheduler_for,
    resolve_database,
    run_kstar_cell,
)
from repro.evaluation.reporting import ExperimentResult
from repro.graph.generators import amazon_like, deezer_like
from repro.graph.kstar import kstar_count
from repro.workloads.kstar_queries import q2star, q3star

__all__ = ["run", "cells", "MECHANISMS", "KSTAR_EPSILONS"]

MECHANISMS = ("PM", "R2T", "TM")
KSTAR_EPSILONS = (0.1, 0.5, 1.0)

#: dataset name → (graph builder, seed offset); builders are module-level so
#: cells pickle by reference and workers rebuild (or inherit) the graph.
_DATASETS = {"Deezer": (deezer_like, 0), "Amazon": (amazon_like, 1)}


def build_graph(dataset: str, seed: int, scale: float):
    """Build one of the Table 2 graphs (importable worker entry point)."""
    builder, offset = _DATASETS[dataset]
    return builder(rng=seed + offset, scale=scale)


def cells(
    config: ExperimentConfig,
    graph_scale: float = 0.25,
    epsilons: Sequence[float] = KSTAR_EPSILONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> list[KStarCell]:
    """The cell grid of Table 2, in row order."""
    return [
        KStarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=query_builder,
            database_builder=build_graph,
            database_args=(dataset, config.seed, graph_scale),
            stream=("table2", dataset, label, epsilon, mechanism_name),
        )
        for dataset in _DATASETS
        for label, query_builder in (("Q2*", q2star), ("Q3*", q3star))
        for epsilon in epsilons
        for mechanism_name in mechanisms
    ]


def run(
    config: Optional[ExperimentConfig] = None,
    graph_scale: float = 0.25,
    epsilons: Sequence[float] = KSTAR_EPSILONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Table 2 (relative error and running time on k-star queries)."""
    config = config or ExperimentConfig()
    # Warm the per-process graph cache (and the graphs' star-count caches)
    # before the scheduler forks, so workers inherit them.
    for dataset in _DATASETS:
        graph = resolve_database(build_graph, (dataset, config.seed, graph_scale))
        for query_builder in (q2star, q3star):
            kstar_count(graph, query_builder(graph))

    result = ExperimentResult(
        title="Table 2: PM, R2T, TM on k-star queries (relative error % and time)",
        notes=(
            f"Synthetic power-law graphs at scale {graph_scale} of the original "
            "datasets (see DESIGN.md substitutions); "
            f"{config.trials} trials per cell."
        ),
    )
    grid = cells(config, graph_scale=graph_scale, epsilons=epsilons, mechanisms=mechanisms)
    evaluations = scheduler_for(config).map(partial(run_kstar_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        result.add_row(
            dataset=cell.database_args[0],
            query=evaluation.query,
            epsilon=cell.epsilon,
            mechanism=cell.mechanism,
            relative_error_pct=evaluation.mean_relative_error,
            mean_time_s=evaluation.mean_time,
        )
    return result
