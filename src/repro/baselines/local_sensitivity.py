"""LS: the local-sensitivity based mechanism (paper Section 4, and [35]).

The two-phase strategy described by the paper:

1. compute an upper bound L̂S_Q(D_s) of the local sensitivity of the star-join
   query on the given instance — for a private dimension table this is the
   maximum fan-out of any of its keys into the (partially filtered) fact
   table;
2. add noise calibrated to that bound, either through the general Cauchy
   mechanism (pure ε-DP, noise level (2(γ+1)·L̂S/ε)²) or the Laplace mechanism
   ((ε, δ)-DP, noise Lap(2·L̂S/ε)).

Following the paper's Table 1, the mechanism answers only COUNT star-join
queries; SUM and GROUP BY raise
:class:`~repro.exceptions.UnsupportedQueryError`.
"""

from __future__ import annotations

from typing import Optional

from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.query import AggregateKind, StarJoinQuery
from repro.dp.mechanisms import CauchyMechanism, LaplaceMechanism
from repro.dp.neighboring import PrivacyScenario
from repro.dp.sensitivity import local_sensitivity_star_count
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = ["LocalSensitivityMechanism"]


class LocalSensitivityMechanism:
    """Data-dependent noise calibrated to a local-sensitivity upper bound (LS)."""

    name = "LS"
    supports_count = True
    supports_sum = False
    supports_group_by = False

    def __init__(
        self,
        epsilon: float,
        scenario: Optional[PrivacyScenario] = None,
        variant: str = "cauchy",
        gamma: float = 4.0,
        delta: float = 1e-6,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        if variant not in {"cauchy", "laplace"}:
            raise ValueError(f"variant must be 'cauchy' or 'laplace', got {variant!r}")
        self.epsilon = float(epsilon)
        self.scenario = scenario
        self.variant = variant
        self.gamma = float(gamma)
        self.delta = float(delta)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _scenario_for(self, database: StarDatabase) -> PrivacyScenario:
        if self.scenario is not None:
            return self.scenario
        return PrivacyScenario.dimensions(*database.schema.dimension_names)

    def local_sensitivity_bound(
        self, database: StarDatabase, query: StarJoinQuery
    ) -> float:
        """L̂S_Q(D_s): the largest per-key contribution over all private dimensions."""
        scenario = self._scenario_for(database)
        if not scenario.private_dimensions:
            # Only the fact table is private; a single tuple changes the count
            # by exactly one.
            return 1.0
        bounds = [
            local_sensitivity_star_count(database, query, dimension)
            for dimension in scenario.private_dimensions
        ]
        return float(max(bounds)) if bounds else 1.0

    # ------------------------------------------------------------------
    def answer_value(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> float:
        if query.is_grouped:
            raise UnsupportedQueryError("LS does not support GROUP BY star-join queries")
        if query.kind is not AggregateKind.COUNT:
            raise UnsupportedQueryError(
                f"LS does not support {query.kind.value.upper()} star-join queries"
            )
        generator = ensure_rng(rng) if rng is not None else self._rng
        from repro.db.executor import QueryExecutor

        exact = float(QueryExecutor(database, engine=engine).execute(query))
        bound = self.local_sensitivity_bound(database, query)
        if self.variant == "cauchy":
            mechanism = CauchyMechanism(
                smooth_sensitivity=bound, epsilon=self.epsilon, gamma=self.gamma
            )
        else:
            # (ε, δ) variant: Lap(2·L̂S/ε) as described in Section 4.
            mechanism = LaplaceMechanism(sensitivity=2.0 * bound, epsilon=self.epsilon)
        return mechanism.randomise(exact, rng=generator)
