"""Fault-tolerance smoke: flaky-network batch, breaker recovery, durable ledger.

Three end-to-end properties (CI runs this next to the serving and
cache-server smokes):

1. **Byte-identical answers through a flaky network** — a quick batch run
   through a :class:`ChaosProxy` (dropped chunks, killed connections, added
   latency) in front of the cache server produces exactly the rows of a
   clean local-backend run.  Resilience costs wall clock, never correctness.
2. **Circuit breaker degrade + recover** — corrupt every chunk and watch the
   remote cache backend trip to local-only operation; heal the network and
   watch the breaker's half-open probe bring the remote tier back.
3. **Durable ledger across SIGKILL** — a serving process started with
   ``--ledger-path`` spends ε, is SIGKILLed, restarts on the same journal
   and still remembers the spend: admission refuses past the budget.

Usage::

    PYTHONPATH=src python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.db.cache import LocalCacheBackend, RemoteCacheBackend, backend_scope
from repro.db.cache.server import CacheServerThread
from repro.evaluation.experiments import table1
from repro.evaluation.experiments.common import ExperimentConfig
from repro.serving import ServingClient, ServingError
from repro.testing import ChaosProxy, FaultSpec

QUERIES = ("Qc1", "Qs2")

#: The flaky network of the fault-tolerance test suite: 5% of chunks lost,
#: 2% of chunks kill their connection, 30% of chunks delayed 5 ms.
FLAKY = FaultSpec(drop_rate=0.05, kill_rate=0.02, delay_s=0.005, delay_rate=0.3)

DEMO_SPEC = {
    "name": "demo",
    "kind": "ssb",
    "scale_factor": 1.0,
    "rows_per_scale_factor": 2000,
    "seed": 5,
}


def _resilient_backend(port: int) -> RemoteCacheBackend:
    """A remote backend with deadlines tight enough for a smoke test."""
    return RemoteCacheBackend(
        host="127.0.0.1",
        port=port,
        op_timeout=0.25,
        retry_attempts=3,
        backoff_base=0.01,
        backoff_max=0.05,
        breaker_threshold=3,
        breaker_reset_timeout=0.3,
    )


def _rows(result) -> list[dict]:
    """Result rows with the wall-clock column dropped (it may legitimately differ)."""
    return [{k: v for k, v in row.items() if k != "mean_time_s"} for row in result.rows]


def step_flaky_batch() -> int:
    config = ExperimentConfig(
        epsilons=(0.1, 1.0), trials=2, rows_per_scale_factor=4000, seed=11
    )
    with backend_scope(LocalCacheBackend()):
        reference = _rows(table1.run(config, query_names=QUERIES))
    with CacheServerThread(max_entries=4096) as handle:
        with ChaosProxy("127.0.0.1", handle.server.port, spec=FLAKY, seed=7) as proxy:
            backend = _resilient_backend(proxy.port)
            try:
                with backend_scope(backend):
                    chaotic = _rows(table1.run(config, query_names=QUERIES))
            finally:
                backend.close()
            stats = proxy.stats()
    if chaotic != reference:
        print("rows differ between the clean and the chaos run", file=sys.stderr)
        return 1
    print(
        f"[1/3] flaky-network batch: rows identical to the clean run "
        f"({stats['chunks_dropped']} chunks dropped, "
        f"{stats['connections_killed']} connections killed)"
    )
    return 0


def step_breaker_recovery() -> int:
    with CacheServerThread(max_entries=64) as handle:
        with ChaosProxy("127.0.0.1", handle.server.port) as proxy:
            backend = _resilient_backend(proxy.port)
            try:
                backend.put("ns", "result", "k", 1.5)
                if backend.get("ns", "result", "k") != 1.5:
                    print("clean round trip through the proxy failed", file=sys.stderr)
                    return 1
                proxy.set_faults(corrupt_rate=1.0)  # every chunk now garbage
                backend.release("ns")  # drop the local copy; force remote reads
                backend.get("ns", "result", "k")  # trips the breaker
                if not backend.degraded:
                    print("breaker did not trip under corruption", file=sys.stderr)
                    return 1
                proxy.set_faults()  # network heals
                time.sleep(0.35)  # past breaker_reset_timeout: half-open
                if backend.get("ns", "result", "k") != 1.5:
                    print("probe after healing did not recover the value", file=sys.stderr)
                    return 1
                stats = backend.breaker_stats()
                if backend.degraded or stats["recoveries"] < 1:
                    print(f"breaker did not recover: {stats}", file=sys.stderr)
                    return 1
            finally:
                backend.close()
    print(
        f"[2/3] circuit breaker: tripped to local-only under corruption, "
        f"probed back after healing ({stats['trips']} trip(s), "
        f"{stats['recoveries']} recovery(ies))"
    )
    return 0


def _spawn_server(ledger: Path) -> tuple[subprocess.Popen, int]:
    """Start a durable serving process on an ephemeral port; returns (proc, port)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--workers",
            "2",
            "--analyst-epsilon",
            "1.0",
            "--ledger-path",
            str(ledger),
            "--register",
            json.dumps(DEMO_SPEC),
        ],
        env=os.environ.copy(),
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"serving process exited at startup ({process.returncode})")
        line = process.stdout.readline()
        if not line:
            time.sleep(0.05)
            continue
        print(f"    server: {line.rstrip()}")
        if line.startswith("serving on "):
            address = line.removeprefix("serving on ").split(" ", 1)[0]
            return process, int(address.rsplit(":", 1)[1])
    process.kill()
    raise RuntimeError("serving process did not report its port within 60s")


def step_durable_ledger() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ledger.db"
        server, port = _spawn_server(path)
        try:
            with ServingClient(port=port) as client:
                client.query("demo", "PM", 0.4, query="Qc1", analyst="alice")
        finally:
            server.kill()  # SIGKILL: no drain, no journal settle-on-exit
            server.wait(timeout=30)
        print("    server SIGKILLed after alice spent eps=0.4")

        server, port = _spawn_server(path)
        try:
            with ServingClient(port=port) as client:
                spent = client.budget("alice")["spent_epsilon"]
                if abs(spent - 0.4) > 1e-9:
                    print(f"restart forgot the spend: {spent}", file=sys.stderr)
                    return 1
                try:
                    client.query("demo", "PM", 0.7, query="Qc1", analyst="alice")
                except ServingError as error:
                    if error.code != "budget_exhausted":
                        print(f"unexpected refusal: {error}", file=sys.stderr)
                        return 1
                else:
                    print("over-budget query was admitted after restart", file=sys.stderr)
                    return 1
                client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
        finally:
            server.terminate()
            server.wait(timeout=30)
    print(
        "[3/3] durable ledger: spend survived SIGKILL + restart "
        "(over-budget query refused, in-budget query served)"
    )
    return 0


def main() -> int:
    for step in (step_flaky_batch, step_breaker_recovery, step_durable_ledger):
        code = step()
        if code:
            return code
    print("fault-tolerance smoke OK: identical rows, breaker recovery, durable spend")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
