"""Additional coverage: less-travelled paths across modules.

Covers the SUM path of Workload Decomposition, snowflake SQL parsing, AVG and
grouped AVG execution, the rng helpers, the relational edge-table view of
graphs, and a handful of error paths not exercised elsewhere.
"""

import numpy as np
import pytest

from repro.core.workload import WorkloadDecomposition, answer_workload_exact
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.predicates import PointPredicate, TruePredicate
from repro.db.query import Aggregate, AggregateKind, GroupBy, Measure, StarJoinQuery
from repro.db.sql import parse_star_join_sql
from repro.datagen.tpch import snowflake_schema
from repro.exceptions import QueryError
from repro.graph.kstar import KStarQuery, kstar_count
from repro.rng import derive_seed, ensure_rng, spawn
from repro.workloads.workload_matrices import workload_w1


class TestRngHelpers:
    def test_ensure_rng_accepts_all_forms(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        assert isinstance(ensure_rng(5), np.random.Generator)
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_is_reproducible_and_independent(self):
        children_a = spawn(7, 3)
        children_b = spawn(7, 3)
        assert len(children_a) == 3
        draws_a = [c.integers(0, 1000) for c in children_a]
        draws_b = [c.integers(0, 1000) for c in children_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) > 1

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)

    def test_derive_seed(self):
        assert derive_seed(None) is None
        assert derive_seed(3) == derive_seed(3)


class TestQueryObjects:
    def test_measure_describe(self):
        assert Measure("revenue").describe() == "revenue"
        assert Measure("revenue", "cost").describe() == "revenue - cost"

    def test_sum_requires_measure(self):
        with pytest.raises(QueryError):
            Aggregate(kind=AggregateKind.SUM)

    def test_group_by_requires_keys(self):
        with pytest.raises(QueryError):
            GroupBy(())

    def test_with_predicates_preserves_everything_else(self, ssb_schema_fixture):
        domain = ssb_schema_fixture.table_schema("Customer").domain_of("region")
        original = StarJoinQuery.sum(
            "q", "revenue", [PointPredicate("Customer", "region", domain, value="ASIA")],
            group_by=[("Date", "year")],
        )
        replaced = original.with_predicates(
            [PointPredicate("Customer", "region", domain, value="EUROPE")]
        )
        assert replaced.aggregate == original.aggregate
        assert replaced.group_by == original.group_by
        assert replaced.predicates.predicates[0].value == "EUROPE"


class TestExecutorExtras:
    def test_avg_query(self, ssb_small):
        query = StarJoinQuery.avg("avg", "revenue")
        value = QueryExecutor(ssb_small).execute(query)
        assert 1.0 <= value <= 100.0

    def test_grouped_avg(self, tiny_db):
        query = StarJoinQuery(
            name="avg-by-color",
            aggregate=Aggregate.avg("amount"),
            predicates=tiny_db_predicates(tiny_db),
            group_by=GroupBy((("Color", "color"),)),
        )
        result = QueryExecutor(tiny_db).execute(query)
        assert isinstance(result, GroupedResult)
        # Red rows carry amounts 1, 2, 7, 8 -> average 4.5.
        assert result.groups[("red",)] == pytest.approx(4.5)

    def test_true_predicate_selects_everything(self, tiny_db):
        domain = tiny_db.dimension("Color").domain("color")
        query = StarJoinQuery.count("all", [TruePredicate("Color", "color", domain)])
        assert QueryExecutor(tiny_db).execute(query) == tiny_db.num_fact_rows


def tiny_db_predicates(tiny_db):
    from repro.db.predicates import ConjunctionPredicate

    return ConjunctionPredicate()


class TestSnowflakeSQL:
    def test_parse_predicate_on_outer_dimension(self, snowflake_small):
        schema = snowflake_schema()
        sql = (
            "SELECT count(*) FROM Lineorder, Date, Month, Customer "
            "WHERE Lineorder.DK = Date.DK AND Date.MK = Month.MK "
            "AND Month.month < 7 AND Customer.region = 'ASIA'"
        )
        query = parse_star_join_sql(sql, schema, name="Qtc-sql")
        tables = {p.table for p in query.predicates}
        assert tables == {"Month", "Customer"}
        value = QueryExecutor(snowflake_small).execute(query)
        assert 0 < value < snowflake_small.num_fact_rows


class TestWorkloadDecompositionSum:
    def test_sum_workload_matches_exact_at_high_epsilon(self, ssb_small):
        queries = [
            StarJoinQuery.sum(query.name, "revenue", list(query.predicates))
            for query in workload_w1()[:4]
        ]
        exact = answer_workload_exact(ssb_small, queries)
        mechanism = WorkloadDecomposition(epsilon=1e7, rng=2)
        answer = mechanism.answer(
            ssb_small, queries, kind=AggregateKind.SUM, measure="revenue"
        )
        assert answer.values == pytest.approx(exact, rel=1e-6)

    def test_sum_workload_with_noise_is_finite(self, ssb_small):
        queries = [
            StarJoinQuery.sum(query.name, "revenue", list(query.predicates))
            for query in workload_w1()[:3]
        ]
        answer = WorkloadDecomposition(epsilon=0.5, rng=3).answer(
            ssb_small, queries, kind=AggregateKind.SUM, measure="revenue"
        )
        assert np.all(np.isfinite(answer.values))


class TestGraphEdgeTableView:
    def test_symmetric_edge_table_counts_directed_pairs(self, small_graph):
        table = small_graph.as_edge_table(symmetric=True)
        # Every undirected edge contributes two directed rows.
        assert table.num_rows == 2 * small_graph.num_edges
        from_ids = table.codes("from_id")
        degrees = np.bincount(from_ids, minlength=small_graph.num_nodes)
        assert np.array_equal(degrees, small_graph.degrees())

    def test_degree_view_consistent_with_kstar_count(self, small_graph):
        """Counting 2-stars from the edge-table degrees reproduces kstar_count —
        the relational self-join view and the graph view agree."""
        table = small_graph.as_edge_table(symmetric=True)
        degrees = np.bincount(table.codes("from_id"), minlength=small_graph.num_nodes)
        manual = float(sum(d * (d - 1) // 2 for d in degrees))
        assert manual == kstar_count(small_graph, KStarQuery(k=2))
