"""Benchmark: regenerate Table 2 (PM / R2T / TM on k-star queries).

Expected shape (paper Table 2): PM's relative error is far below TM's, PM is
the fastest of the three mechanisms, and errors shrink as ε grows for the
truncation-based baselines.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import table2


def test_table2(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        lambda: table2.run(bench_config, graph_scale=0.1), rounds=1, iterations=1
    )
    record_result(result, "table2")

    for dataset in ("Deezer", "Amazon"):
        pm = np.mean(errors_of(result, dataset=dataset, mechanism="PM"))
        tm = np.mean(errors_of(result, dataset=dataset, mechanism="TM"))
        assert pm < tm

        pm_time = np.mean(
            [row["mean_time_s"] for row in result.filter(dataset=dataset, mechanism="PM").rows]
        )
        tm_time = np.mean(
            [row["mean_time_s"] for row in result.filter(dataset=dataset, mechanism="TM").rows]
        )
        r2t_time = np.mean(
            [row["mean_time_s"] for row in result.filter(dataset=dataset, mechanism="R2T").rows]
        )
        assert pm_time <= tm_time
        assert pm_time <= r2t_time * 2.0
