"""Property-based tests (hypothesis) for domains and predicates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.domains import AttributeDomain
from repro.db.predicates import PointPredicate, RangePredicate, SetPredicate
from repro.core.matrix_decomposition import predicate_from_indicator


@st.composite
def integer_domains(draw):
    low = draw(st.integers(min_value=-1000, max_value=1000))
    size = draw(st.integers(min_value=1, max_value=200))
    return AttributeDomain.integer_range("attr", low, low + size - 1)


@st.composite
def domain_and_code(draw):
    domain = draw(integer_domains())
    code = draw(st.integers(min_value=0, max_value=domain.size - 1))
    return domain, code


@st.composite
def domain_and_interval(draw):
    domain = draw(integer_domains())
    low = draw(st.integers(min_value=0, max_value=domain.size - 1))
    high = draw(st.integers(min_value=low, max_value=domain.size - 1))
    return domain, low, high


class TestDomainProperties:
    @given(domain_and_code())
    def test_encode_decode_roundtrip(self, pair):
        domain, code = pair
        assert domain.encode(domain.decode(code)) == code

    @given(integer_domains(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_clamp_always_lands_in_domain(self, domain, raw):
        code = domain.clamp_code(raw)
        assert 0 <= code < domain.size
        assert domain.decode(code) in domain

    @given(domain_and_interval())
    def test_slice_size_matches_interval(self, triple):
        domain, low, high = triple
        values = domain.slice_values(low, high)
        assert len(values) == high - low + 1


class TestPredicateProperties:
    @given(domain_and_code())
    @settings(max_examples=50)
    def test_point_indicator_selects_exactly_one(self, pair):
        domain, code = pair
        predicate = PointPredicate("T", "attr", domain, value=domain.decode(code))
        indicator = predicate.indicator_vector()
        assert indicator.sum() == 1
        assert indicator[code] == 1

    @given(domain_and_interval())
    @settings(max_examples=50)
    def test_range_indicator_is_contiguous_and_sized(self, triple):
        domain, low, high = triple
        predicate = RangePredicate(
            "T", "attr", domain, low=domain.decode(low), high=domain.decode(high)
        )
        indicator = predicate.indicator_vector()
        assert indicator.sum() == high - low + 1
        selected = np.flatnonzero(indicator)
        assert np.all(np.diff(selected) == 1)

    @given(domain_and_interval())
    @settings(max_examples=50)
    def test_range_selectivity_between_zero_and_one(self, triple):
        domain, low, high = triple
        predicate = RangePredicate(
            "T", "attr", domain, low=domain.decode(low), high=domain.decode(high)
        )
        assert 0.0 < predicate.selectivity() <= 1.0

    @given(integer_domains(), st.data())
    @settings(max_examples=50)
    def test_set_predicate_matches_membership(self, domain, data):
        codes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=domain.size - 1),
                min_size=1,
                max_size=min(domain.size, 8),
                unique=True,
            )
        )
        values = tuple(domain.decode(c) for c in codes)
        predicate = SetPredicate("T", "attr", domain, values=values)
        probe = np.arange(domain.size)
        mask = predicate.evaluate_codes(probe)
        assert set(np.flatnonzero(mask)) == set(codes)

    @given(integer_domains(), st.data())
    @settings(max_examples=50)
    def test_predicate_from_indicator_roundtrip(self, domain, data):
        codes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=domain.size - 1),
                min_size=1,
                max_size=min(domain.size, 10),
                unique=True,
            )
        )
        vector = np.zeros(domain.size)
        vector[codes] = 1.0
        predicate = predicate_from_indicator(vector, domain, "T", "attr")
        assert np.array_equal(predicate.indicator_vector(), vector)
