"""Figure 4: running time and error of PM, R2T, LS vs data scale (COUNT).

The paper varies the SSB scale factor from 0.25 to 1 and reports, for the
four counting queries Qc1–Qc4, both the error level and the running time of
each mechanism.  The headline observations to reproduce: PM's error barely
changes with the data size (its noise depends only on the predicate domains),
LS's error grows with the data size, and every mechanism's running time grows
roughly linearly, with PM's growth the smallest.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.evaluation.experiments.common import ExperimentConfig, PAPER_SCALES, build_ssb_database
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "MECHANISMS", "QUERIES"]

MECHANISMS = ("PM", "R2T", "LS")
QUERIES = ("Qc1", "Qc2", "Qc3", "Qc4")


def run(
    config: Optional[ExperimentConfig] = None,
    scales: Sequence[float] = PAPER_SCALES,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 4 (COUNT queries; error and running time vs scale)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        title="Figure 4: error level and running time vs data scale (COUNT queries)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    # One database per scale; cells of the same scale stay contiguous so a
    # worker's chunk shares its database.  The fact-row counts are recorded
    # here (cheap: builds land in the shared cache the workers inherit).
    fact_rows = {
        scale: build_ssb_database(
            config, scale_factor=scale, seed_offset=int(scale * 100)
        ).num_fact_rows
        for scale in scales
    }
    grid = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(config, scale, "uniform", "uniform", int(scale * 100)),
            stream=("figure4", scale, query_name, mechanism_name),
        )
        for scale in scales
        for query_name in query_names
        for mechanism_name in mechanisms
    ]
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        scale = cell.database_args[1]
        result.add_row(
            scale=scale,
            query=cell.query_args[0],
            mechanism=cell.mechanism,
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
            mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
            fact_rows=fact_rows[scale],
        )
    return result
