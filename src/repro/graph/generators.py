"""Synthetic graph generators standing in for the paper's SNAP datasets.

The paper uses two real networks — Deezer (144 000 nodes, 847 000 edges) and
Amazon co-purchasing (335 000 nodes, 926 000 edges) — which are not available
offline.  The k-star experiments depend only on the degree sequence and the
node-id domain, so heavy-tailed synthetic graphs with matching node and edge
counts reproduce the relevant behaviour (see DESIGN.md, substitutions table).

The generator draws a power-law degree sequence and wires it with a
configuration-model style stub matching implemented in numpy (fast enough for
hundreds of thousands of edges), then canonicalises to a simple graph.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataGenerationError
from repro.graph.edge_table import Graph
from repro.rng import RngLike, ensure_rng

__all__ = ["powerlaw_graph", "deezer_like", "amazon_like"]

#: Node/edge counts of the paper's datasets (used at scale=1.0).
DEEZER_NODES = 144_000
DEEZER_EDGES = 847_000
AMAZON_NODES = 335_000
AMAZON_EDGES = 926_000


def _powerlaw_degree_sequence(
    num_nodes: int, num_edges: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample a degree sequence with a power-law tail and the right total."""
    # Pareto-distributed weights give the heavy tail; rescale so the expected
    # number of edges matches the target.
    weights = (1.0 + rng.pareto(exponent - 1.0, size=num_nodes))
    weights *= (2.0 * num_edges) / weights.sum()
    degrees = rng.poisson(weights)
    # Keep the degree sum even (required for stub matching).
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, num_nodes))] += 1
    return degrees.astype(np.int64)


def powerlaw_graph(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.5,
    rng: RngLike = None,
    name: str = "powerlaw",
) -> Graph:
    """Generate a simple graph with a power-law degree distribution.

    Parameters
    ----------
    num_nodes, num_edges:
        Target sizes.  The returned simple graph may have slightly fewer edges
        because self-loops and multi-edges produced by stub matching are
        dropped.
    exponent:
        Power-law exponent of the degree tail (2–3 for social networks).
    """
    if num_nodes < 2:
        raise DataGenerationError("a power-law graph needs at least two nodes")
    if num_edges < 1:
        raise DataGenerationError("a power-law graph needs at least one edge")
    generator = ensure_rng(rng)
    degrees = _powerlaw_degree_sequence(num_nodes, num_edges, exponent, generator)
    stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    generator.shuffle(stubs)
    if stubs.size % 2 == 1:
        stubs = stubs[:-1]
    edges = stubs.reshape(-1, 2)
    return Graph(num_nodes=num_nodes, edges=edges, name=name)


def deezer_like(rng: RngLike = None, scale: float = 1.0) -> Graph:
    """A Deezer-like friendship graph (144k nodes / 847k edges at scale 1.0)."""
    if scale <= 0:
        raise DataGenerationError("scale must be positive")
    return powerlaw_graph(
        num_nodes=max(int(DEEZER_NODES * scale), 10),
        num_edges=max(int(DEEZER_EDGES * scale), 10),
        exponent=2.6,
        rng=rng,
        name="deezer-like",
    )


def amazon_like(rng: RngLike = None, scale: float = 1.0) -> Graph:
    """An Amazon-co-purchasing-like graph (335k nodes / 926k edges at scale 1.0)."""
    if scale <= 0:
        raise DataGenerationError("scale must be positive")
    return powerlaw_graph(
        num_nodes=max(int(AMAZON_NODES * scale), 10),
        num_edges=max(int(AMAZON_EDGES * scale), 10),
        exponent=2.9,
        rng=rng,
        name="amazon-like",
    )
