"""The DP-starJ framework facade (paper Section 5.1, Figure 2).

DP-starJ answers star-join queries under ε-DP in three phases:

1. **Extract predicates** — the star-join query (given as a
   :class:`~repro.db.query.StarJoinQuery` or as SQL text) is decomposed into
   one predicate per dimension table.
2. **Perturbation query** — each predicate is perturbed with the Predicate
   Mechanism (budget ε/n per predicate).
3. **Answering** — the noisy query is executed exactly against the database
   instance.

:class:`DPStarJoin` packages the three phases behind a small, session-like
API: construct it once over a database with a total budget, then ask it
queries; a :class:`~repro.dp.accountant.PrivacyAccountant` tracks cumulative
spend across queries and refuses to exceed the session budget.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core.predicate_mechanism import PMAnswer, PredicateMechanism
from repro.core.workload import (
    IndependentPMWorkload,
    WorkloadAnswer,
    WorkloadDecomposition,
)
from repro.db.database import StarDatabase
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.query import AggregateKind, StarJoinQuery
from repro.db.sql import parse_star_join_sql
from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.dp.neighboring import PrivacyScenario
from repro.rng import RngLike, ensure_rng

__all__ = ["DPStarJoin"]

AnswerValue = Union[float, GroupedResult]


class DPStarJoin:
    """A DP-starJ session over one star database.

    Parameters
    ----------
    database:
        The star-schema instance to answer queries on.
    total_epsilon:
        Total privacy budget available to this session; every answered query
        is charged against it.
    scenario:
        Which tables are private.  Informational for PM (whose noise is data
        independent) but recorded so reports can state the privacy model; by
        default all dimension tables are considered private — the hardest and,
        per the paper, most realistic case.
    rng:
        Seed or generator for reproducible perturbation.
    """

    def __init__(
        self,
        database: StarDatabase,
        total_epsilon: float,
        scenario: Optional[PrivacyScenario] = None,
        rng: RngLike = None,
    ):
        self.database = database
        self.accountant = PrivacyAccountant(PrivacyBudget(total_epsilon))
        self.scenario = scenario or PrivacyScenario.dimensions(
            *database.schema.dimension_names
        )
        self._rng = ensure_rng(rng)
        self._executor = QueryExecutor(database)

    # ------------------------------------------------------------------
    # phase 1: predicate extraction
    # ------------------------------------------------------------------
    def parse(self, sql: str, name: str = "query") -> StarJoinQuery:
        """Parse SQL text into a star-join query against this database's schema."""
        return parse_star_join_sql(sql, self.database.schema, name=name)

    # ------------------------------------------------------------------
    # phases 2 + 3: perturb and answer
    # ------------------------------------------------------------------
    def answer(
        self, query: StarJoinQuery, epsilon: float, rng: RngLike = None
    ) -> PMAnswer:
        """Answer one star-join query with budget ``epsilon`` (charged to the session)."""
        self.accountant.charge(PrivacyBudget(epsilon), label=query.name)
        mechanism = PredicateMechanism(epsilon=epsilon, rng=rng if rng is not None else self._rng)
        return mechanism.answer(self.database, query, executor=self._executor)

    def answer_sql(self, sql: str, epsilon: float, name: str = "query") -> PMAnswer:
        """Parse and answer a SQL star-join query in one call."""
        return self.answer(self.parse(sql, name=name), epsilon=epsilon)

    def answer_workload(
        self,
        queries: Sequence[StarJoinQuery],
        epsilon: float,
        use_decomposition: bool = True,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[str] = None,
        rng: RngLike = None,
    ) -> WorkloadAnswer:
        """Answer a workload of star-join queries (Algorithm 4).

        With ``use_decomposition=True`` the Workload Decomposition strategy is
        used; otherwise each query is answered independently with PM.
        """
        self.accountant.charge(PrivacyBudget(epsilon), label=f"workload[{len(queries)}]")
        generator = rng if rng is not None else self._rng
        if use_decomposition:
            mechanism = WorkloadDecomposition(epsilon=epsilon, rng=generator)
            return mechanism.answer(self.database, queries, kind=kind, measure=measure)
        baseline = IndependentPMWorkload(epsilon=epsilon, rng=generator)
        return baseline.answer(self.database, queries)

    # ------------------------------------------------------------------
    # non-private reference (for evaluation only)
    # ------------------------------------------------------------------
    def exact(self, query: StarJoinQuery) -> AnswerValue:
        """The exact (non-private) answer; used by evaluations, never released."""
        return self._executor.execute(query)

    def exact_workload(self, queries: Sequence[StarJoinQuery]) -> np.ndarray:
        return np.array(
            [float(self._executor.execute(query)) for query in queries], dtype=np.float64
        )

    # ------------------------------------------------------------------
    @property
    def remaining_epsilon(self) -> float:
        return self.accountant.remaining_epsilon
