"""Tests for the evaluation utilities: metrics, reporting and the runner."""

import numpy as np
import pytest

from repro.db.executor import GroupedResult
from repro.dp.neighboring import PrivacyScenario
from repro.evaluation.metrics import (
    Stopwatch,
    answer_relative_error,
    grouped_relative_error,
    relative_error,
    stopwatch,
    workload_relative_error,
)
from repro.evaluation.reporting import ExperimentResult, format_table
from repro.evaluation.runner import (
    KSTAR_MECHANISMS,
    STAR_MECHANISMS,
    evaluate_kstar_mechanism,
    evaluate_mechanism,
    make_kstar_mechanism,
    make_star_mechanism,
)
from repro.exceptions import ReproError
from repro.graph.kstar import KStarQuery
from repro.workloads.ssb_queries import ssb_query


class TestRelativeError:
    def test_basic(self):
        assert relative_error(100.0, 110.0) == pytest.approx(10.0)
        assert relative_error(100.0, 90.0) == pytest.approx(10.0)
        assert relative_error(100.0, 100.0) == 0.0

    def test_zero_truth_falls_back_to_absolute(self):
        assert relative_error(0.0, 5.0) == 5.0

    def test_grouped_error_union_alignment(self):
        true = GroupedResult(keys=(("D", "a"),), groups={("x",): 10.0, ("y",): 10.0})
        noisy = GroupedResult(keys=(("D", "a"),), groups={("x",): 12.0, ("z",): 3.0})
        # |12-10| + |0-10| + |3-0| = 15 over a denominator of 20.
        assert grouped_relative_error(true, noisy) == pytest.approx(75.0)

    def test_workload_error_is_mean_of_per_query_errors(self):
        assert workload_relative_error([10, 20], [11, 22]) == pytest.approx(10.0)

    def test_workload_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            workload_relative_error([1, 2], [1])

    def test_answer_relative_error_dispatch(self):
        true = GroupedResult(keys=(("D", "a"),), groups={("x",): 10.0})
        noisy = GroupedResult(keys=(("D", "a"),), groups={("x",): 15.0})
        assert answer_relative_error(true, noisy) == pytest.approx(50.0)
        assert answer_relative_error(10.0, 15.0) == pytest.approx(50.0)

    def test_stopwatch(self):
        watch = Stopwatch()
        with stopwatch(watch):
            sum(range(1000))
        with stopwatch(watch):
            sum(range(1000))
        assert watch.elapsed > 0.0
        assert len(watch.laps) == 2
        assert watch.mean_lap == pytest.approx(watch.elapsed / 2)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "metric"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "n/a" in lines[3]

    def test_experiment_result_round_trip(self, tmp_path):
        result = ExperimentResult(title="demo", notes="note")
        result.add_row(epsilon=0.1, mechanism="PM", relative_error_pct=12.5)
        result.add_row(epsilon=0.1, mechanism="R2T", relative_error_pct=80.0)
        assert len(result) == 2
        assert result.columns == ["epsilon", "mechanism", "relative_error_pct"]
        assert result.column("mechanism") == ["PM", "R2T"]
        filtered = result.filter(mechanism="PM")
        assert len(filtered) == 1
        text = result.to_text()
        assert "demo" in text and "note" in text
        path = result.to_csv(tmp_path / "out.csv")
        assert path.exists()
        content = path.read_text()
        assert "relative_error_pct" in content
        assert "80.0" in content

    def test_float_formatting(self):
        assert "1.23e+06" in format_table(["x"], [[1_234_567.0]]) or "1.23e+6" in format_table(
            ["x"], [[1_234_567.0]]
        )


class TestRunner:
    def test_star_mechanism_factory(self):
        scenario = PrivacyScenario.dimensions("Customer")
        for name in STAR_MECHANISMS:
            mechanism = make_star_mechanism(name, 0.5, scenario=scenario)
            assert getattr(mechanism, "name") == name

    def test_unknown_star_mechanism(self):
        with pytest.raises(ReproError):
            make_star_mechanism("XYZ", 0.5)

    def test_kstar_mechanism_factory(self):
        for name in KSTAR_MECHANISMS:
            assert make_kstar_mechanism(name, 0.5).name == name
        with pytest.raises(ReproError):
            make_kstar_mechanism("LS", 0.5)

    def test_evaluate_mechanism_collects_trials(self, ssb_small):
        mechanism = make_star_mechanism("PM", 0.5)
        result = evaluate_mechanism(mechanism, ssb_small, ssb_query("Qc2"), trials=4, rng=1)
        assert len(result.relative_errors) == 4
        assert len(result.times) == 4
        assert result.mean_relative_error >= 0.0
        assert result.median_relative_error >= 0.0
        assert result.std_relative_error >= 0.0
        assert not result.unsupported

    def test_std_relative_error_is_sample_std(self):
        from repro.evaluation.runner import EvaluationResult

        result = EvaluationResult(mechanism="PM", query="Qc1", epsilon=0.5)
        result.relative_errors = [1.0, 2.0, 3.0, 4.0]
        assert result.std_relative_error == pytest.approx(
            np.std(result.relative_errors, ddof=1)
        )

    def test_std_relative_error_single_trial_is_nan_without_warning(self):
        from repro.evaluation.runner import EvaluationResult

        result = EvaluationResult(mechanism="PM", query="Qc1", epsilon=0.5)
        result.relative_errors = [1.5]
        with np.errstate(all="raise"):
            assert np.isnan(result.std_relative_error)
        result.relative_errors = []
        assert np.isnan(result.std_relative_error)

    def test_evaluate_mechanism_seed_sequence_rng(self, ssb_small):
        from numpy.random import SeedSequence

        from repro.evaluation.experiments.common import cell_stream

        stream = cell_stream(3, "unit", "PM", "Qc2")
        assert isinstance(stream, SeedSequence)
        a = evaluate_mechanism(
            make_star_mechanism("PM", 0.5), ssb_small, ssb_query("Qc2"), trials=3, rng=stream
        )
        b = evaluate_mechanism(
            make_star_mechanism("PM", 0.5),
            ssb_small,
            ssb_query("Qc2"),
            trials=3,
            rng=cell_stream(3, "unit", "PM", "Qc2"),
        )
        assert a.relative_errors == b.relative_errors

    def test_evaluate_mechanism_reports_unsupported(self, ssb_small):
        scenario = PrivacyScenario.dimensions("Customer")
        mechanism = make_star_mechanism("LS", 0.5, scenario=scenario)
        result = evaluate_mechanism(mechanism, ssb_small, ssb_query("Qs2"), trials=3, rng=1)
        assert result.unsupported
        assert result.relative_errors == []
        assert np.isnan(result.mean_relative_error)

    def test_evaluate_mechanism_reproducible(self, ssb_small):
        mechanism_a = make_star_mechanism("PM", 0.5)
        mechanism_b = make_star_mechanism("PM", 0.5)
        a = evaluate_mechanism(mechanism_a, ssb_small, ssb_query("Qc2"), trials=3, rng=7)
        b = evaluate_mechanism(mechanism_b, ssb_small, ssb_query("Qc2"), trials=3, rng=7)
        assert a.relative_errors == b.relative_errors

    def test_evaluate_kstar_mechanism(self, small_graph):
        mechanism = make_kstar_mechanism("PM", 0.5)
        query = KStarQuery(k=2, low=0, high=small_graph.num_nodes - 1)
        result = evaluate_kstar_mechanism(mechanism, small_graph, query, trials=3, rng=2)
        assert len(result.relative_errors) == 3
        assert result.query == "Q2*"
