"""Seeded random-number plumbing shared by every randomized component.

Every mechanism, generator and experiment in the library accepts an integer
seed, a :class:`numpy.random.Generator`, a :class:`numpy.random.SeedSequence`,
or ``None``.  This module provides the single helper that normalises those
options, so results are reproducible whenever a seed is supplied and
independent across components when it is not.

:class:`~numpy.random.SeedSequence` is the preferred currency of the
evaluation harness: a sequence splits into per-trial child streams with
``SeedSequence.spawn`` — a pure function of the parent's entropy and spawn
key — so the same cell produces the same trial streams no matter which
process evaluates it or in which order (the property the parallel trial
runner relies on).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed, a
        :class:`~numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, int, numpy Generator or SeedSequence, got {type(rng)!r}"
    )


def spawn(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by experiment runners so that each trial has an independent but
    reproducible stream.  A :class:`~numpy.random.SeedSequence` splits via
    ``SeedSequence.spawn`` — deterministic in the sequence itself, so the
    children do not depend on process boundaries or evaluation order (each
    call spawns from a fresh offset, so pass a fresh sequence per batch).
    Other inputs keep the legacy behaviour of drawing child seeds from the
    parent generator.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(rng, np.random.SeedSequence):
        return [np.random.default_rng(child) for child in rng.spawn(count)]
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike) -> Optional[int]:
    """Return an integer seed derived from ``rng`` (or ``None`` if unseeded)."""
    if rng is None:
        return None
    base = ensure_rng(rng)
    return int(base.integers(0, 2**63 - 1))
