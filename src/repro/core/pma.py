"""Predicate Mechanism for an Attribute (PMA) — paper Algorithm 2.

PMA is the perturbation primitive of DP-starJ: instead of adding noise to the
query *result*, it adds Laplace noise to the *predicate* of a single dimension
attribute, inside that attribute's ordinal domain.

* A point constraint ``a = v`` becomes ``a = v̂`` with
  ``v̂ = v + Lap(|dom(a)| / ε)`` (rounded and clamped into the domain).
* A range constraint ``a ∈ [l, r]`` is perturbed in one of two modes:

  - ``range_mode="shift"`` (default): the whole interval is translated by a
    single Laplace draw ``Lap(|dom(a)| / ε)`` and clamped into the domain
    *without changing its width*.
  - ``range_mode="endpoints"``: both endpoints are perturbed independently
    with ``Lap(2·|dom(a)| / ε)`` (each endpoint effectively receives ε/2),
    redrawing reversed intervals as in the paper's ``while l̂ < r̂`` loop.

The global sensitivity of a predicate is the size of its attribute domain
(Theorem 5.2), which is what makes the noise *data independent* — the key to
PM's scale- and GS_Q-insensitivity in the experiments.

**Reproduction note.**  Algorithm 2 as printed describes the ``endpoints``
variant.  Taken literally, a Laplace scale of ``2·|dom|/ε`` makes any narrow
range essentially random for every ε ≤ 1, which yields relative errors far
above those the paper reports for its range-dominated queries (we measure
Qc4 ≈ 160% versus the reported ≈ 8%).  The reported evaluation numbers are
only consistent with a perturbation that preserves the range width, so the
library defaults to the width-preserving ``shift`` mode and keeps the literal
``endpoints`` mode available; ``benchmarks/test_bench_ablation.py`` compares
the two and EXPERIMENTS.md discusses the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.domains import AttributeDomain
from repro.db.predicates import (
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.dp.noise import laplace_noise
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = ["PredicateMechanismForAttribute", "perturb_predicate"]


@dataclass(frozen=True)
class PredicateMechanismForAttribute:
    """Algorithm 2: perturb one single-attribute predicate under ε-DP.

    Parameters
    ----------
    epsilon:
        Privacy budget allocated to this predicate (``ε_i = ε / n`` when
        called from Algorithm 1/3).
    range_mode:
        ``"shift"`` (default) translates range constraints by a single
        Laplace draw, preserving their width; ``"endpoints"`` perturbs both
        endpoints independently as in the printed Algorithm 2 (see the module
        docstring for why the default differs).
    max_range_retries:
        How many times to redraw a reversed range before swapping the
        endpoints (the paper's resampling loop, made terminating; only used
        by the ``endpoints`` mode).
    """

    epsilon: float
    range_mode: str = "shift"
    max_range_retries: int = 64

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyBudgetError(f"PMA requires ε > 0, got {self.epsilon!r}")
        if self.range_mode not in {"shift", "endpoints"}:
            raise UnsupportedQueryError(
                f"range_mode must be 'shift' or 'endpoints', got {self.range_mode!r}"
            )

    # ------------------------------------------------------------------
    def perturb(self, predicate: Predicate, rng: RngLike = None) -> Predicate:
        """Return the noisy predicate φ̂ for ``predicate``."""
        generator = ensure_rng(rng)
        if isinstance(predicate, TruePredicate):
            # Perturbing the full-domain predicate cannot move it anywhere.
            return predicate
        if isinstance(predicate, PointPredicate):
            return self._perturb_point(predicate, generator)
        if isinstance(predicate, RangePredicate):
            return self._perturb_range(predicate, generator)
        if isinstance(predicate, SetPredicate):
            return self._perturb_set(predicate, generator)
        raise UnsupportedQueryError(
            f"PMA does not know how to perturb predicate type {type(predicate).__name__}"
        )

    # ------------------------------------------------------------------
    def _perturb_point(
        self, predicate: PointPredicate, generator
    ) -> PointPredicate:
        domain = predicate.domain
        noisy_code = predicate.code + laplace_noise(domain.size, self.epsilon, rng=generator)
        value = domain.clamp_value(noisy_code)
        return PointPredicate(
            table=predicate.table,
            attribute=predicate.attribute,
            domain=domain,
            value=value,
        )

    def _perturb_range(
        self, predicate: RangePredicate, generator
    ) -> RangePredicate:
        if self.range_mode == "shift":
            return self._perturb_range_shift(predicate, generator)
        return self._perturb_range_endpoints(predicate, generator)

    def _perturb_range_shift(
        self, predicate: RangePredicate, generator
    ) -> RangePredicate:
        """Translate the interval by one Laplace draw, preserving its width."""
        domain = predicate.domain
        low_code = predicate.low_code
        high_code = predicate.high_code
        shift = laplace_noise(domain.size, self.epsilon, rng=generator)
        # Clamp the shift so the translated interval stays inside the domain
        # without shrinking: it may at most start at 0 or end at |dom| - 1.
        shift = int(np.rint(shift))
        shift = max(shift, -low_code)
        shift = min(shift, (domain.size - 1) - high_code)
        return RangePredicate(
            table=predicate.table,
            attribute=predicate.attribute,
            domain=domain,
            low=domain.decode(low_code + shift),
            high=domain.decode(high_code + shift),
        )

    def _perturb_range_endpoints(
        self, predicate: RangePredicate, generator
    ) -> RangePredicate:
        domain = predicate.domain
        sensitivity = 2.0 * domain.size  # each endpoint gets ε/2 of the budget
        low_code = predicate.low_code
        high_code = predicate.high_code

        # The paper's Algorithm 2 keeps redrawing until the perturbed interval
        # is proper (l̂ < r̂); we bound the number of retries and fall back to
        # swapping the endpoints so the mechanism always terminates.  A
        # single-value domain can never satisfy the strict inequality, so it
        # degenerates to the full (single-point) domain.
        noisy_low = low_code
        noisy_high = high_code
        strict_possible = domain.size > 1
        for _ in range(self.max_range_retries):
            noisy_low = domain.clamp_code(
                low_code + laplace_noise(sensitivity, self.epsilon, rng=generator)
            )
            noisy_high = domain.clamp_code(
                high_code + laplace_noise(sensitivity, self.epsilon, rng=generator)
            )
            if noisy_low < noisy_high or not strict_possible:
                break
        else:
            noisy_low, noisy_high = min(noisy_low, noisy_high), max(noisy_low, noisy_high)

        return RangePredicate(
            table=predicate.table,
            attribute=predicate.attribute,
            domain=domain,
            low=domain.decode(noisy_low),
            high=domain.decode(noisy_high),
        )

    def _perturb_set(self, predicate: SetPredicate, generator) -> SetPredicate:
        """Perturb an OR-of-equalities predicate.

        Each member value is perturbed like a point constraint.  The member
        perturbations act on the same attribute and jointly release one noisy
        predicate, so the whole set predicate is charged the attribute's ε
        (the noise per member uses the full domain-size sensitivity, making
        each member at least as noisy as a lone point constraint).
        """
        domain = predicate.domain
        noisy_values = []
        for value in predicate.values:
            code = domain.encode(value)
            noisy_code = code + laplace_noise(domain.size, self.epsilon, rng=generator)
            noisy_values.append(domain.clamp_value(noisy_code))
        # Duplicates collapse naturally in the set semantics.
        unique_values = tuple(dict.fromkeys(noisy_values))
        return SetPredicate(
            table=predicate.table,
            attribute=predicate.attribute,
            domain=domain,
            values=unique_values,
        )


def perturb_predicate(
    predicate: Predicate, epsilon: float, rng: RngLike = None
) -> Predicate:
    """Functional convenience wrapper around :class:`PredicateMechanismForAttribute`."""
    return PredicateMechanismForAttribute(epsilon=epsilon).perturb(predicate, rng=rng)


def expected_point_variance(domain: AttributeDomain, epsilon: float) -> float:
    """Variance of the (unclamped) point perturbation, ``2 (|dom|/ε)²``.

    Used by the theoretical-bound checks (Theorems 5.6 / 5.7): the clamped
    perturbation's variance is upper-bounded by this value.
    """
    scale = domain.size / epsilon
    return 2.0 * scale * scale
