"""Tests for the strategy-matrix decomposition used by WD (Definition 5.1)."""

import numpy as np
import pytest

from repro.core.matrix_decomposition import (
    MatrixDecomposition,
    predicate_from_indicator,
)
from repro.db.domains import AttributeDomain
from repro.db.predicates import PointPredicate, RangePredicate, SetPredicate, TruePredicate
from repro.exceptions import QueryError
from repro.workloads.workload_matrices import W1_MATRIX, W2_MATRIX


@pytest.fixture()
def year_domain():
    return AttributeDomain.integer_range("year", 1992, 1998)


class TestPredicateFromIndicator:
    def test_single_one_becomes_point(self, year_domain):
        predicate = predicate_from_indicator(
            np.array([0, 0, 1, 0, 0, 0, 0]), year_domain, "Date", "year"
        )
        assert isinstance(predicate, PointPredicate)
        assert predicate.value == 1994

    def test_contiguous_run_becomes_range(self, year_domain):
        predicate = predicate_from_indicator(
            np.array([0, 1, 1, 1, 0, 0, 0]), year_domain, "Date", "year"
        )
        assert isinstance(predicate, RangePredicate)
        assert (predicate.low, predicate.high) == (1993, 1995)

    def test_full_domain_becomes_true(self, year_domain):
        predicate = predicate_from_indicator(np.ones(7), year_domain, "Date", "year")
        assert isinstance(predicate, TruePredicate)

    def test_scattered_becomes_set(self, year_domain):
        predicate = predicate_from_indicator(
            np.array([1, 0, 1, 0, 0, 0, 1]), year_domain, "Date", "year"
        )
        assert isinstance(predicate, SetPredicate)
        assert set(predicate.values) == {1992, 1994, 1998}

    def test_all_zero_rejected(self, year_domain):
        with pytest.raises(QueryError):
            predicate_from_indicator(np.zeros(7), year_domain, "Date", "year")

    def test_indicator_roundtrip(self, year_domain):
        vector = np.array([0, 1, 1, 0, 0, 0, 0], dtype=float)
        predicate = predicate_from_indicator(vector, year_domain, "Date", "year")
        assert np.array_equal(predicate.indicator_vector(), vector)


class TestDecomposition:
    def test_exact_reconstruction_for_all_candidates(self):
        workload = W1_MATRIX[:, :7]  # the Date.year block of W1
        for name in MatrixDecomposition.CANDIDATES:
            choice = MatrixDecomposition().decompose_with(workload, name)
            assert choice.reconstruction_error(workload) < 1e-8

    def test_distinct_rows_strategy_shrinks_repeated_workloads(self):
        workload = np.array([[1, 0, 0], [1, 0, 0], [0, 1, 1], [0, 1, 1]], dtype=float)
        choice = MatrixDecomposition().decompose_with(workload, "distinct_rows")
        assert choice.num_rows == 2
        assert choice.reconstruction_error(workload) < 1e-12

    def test_identity_strategy_rows_equal_domain(self):
        workload = np.array([[1, 1, 0, 0]], dtype=float)
        choice = MatrixDecomposition().decompose_with(workload, "identity")
        assert choice.num_rows == 4

    def test_hierarchical_strategy_reconstructs_prefix_ranges(self):
        # Cumulative prefix workload (like W2's year block).
        size = 8
        workload = np.tril(np.ones((size, size)))
        choice = MatrixDecomposition().decompose_with(workload, "hierarchical")
        assert choice.reconstruction_error(workload) < 1e-8

    def test_best_choice_has_minimal_estimated_variance(self):
        workload = W2_MATRIX[:, :7]
        decomposer = MatrixDecomposition()
        best = decomposer.decompose(workload)
        for name in MatrixDecomposition.CANDIDATES:
            candidate = decomposer.decompose_with(workload, name)
            if candidate.reconstruction_error(workload) < 1e-8:
                assert best.estimated_variance() <= candidate.estimated_variance() + 1e-12

    def test_invalid_candidate_name_rejected(self):
        with pytest.raises(QueryError):
            MatrixDecomposition(candidates=("magic",))

    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            MatrixDecomposition().decompose(np.zeros((0, 3)))

    def test_one_dimensional_workload_rejected(self):
        with pytest.raises(QueryError):
            MatrixDecomposition().decompose(np.ones(5))

    def test_w1_region_block_uses_few_strategy_rows(self):
        region_block = W1_MATRIX[:, 7:12]
        choice = MatrixDecomposition().decompose(region_block)
        # W1 uses only two distinct region predicates.
        assert choice.num_rows <= 5
