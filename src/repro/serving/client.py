"""Blocking client for the JSON-line query server.

A thin, dependency-free counterpart to :mod:`repro.serving.server`: one TCP
connection, requests written as JSON lines, responses matched by order (the
server answers a connection's requests sequentially).  Errors come back as
structured payloads and are re-raised as
:class:`~repro.serving.protocol.ServingError` — catching code can branch on
``error.code`` (``budget_exhausted``, ``unsupported``, ...) exactly as if the
ledger had refused in-process.

    with ServingClient(port=8642) as client:
        client.register("demo", "ssb", scale_factor=0.1)
        result = client.query("demo", "PM", 0.5, query="Qc1", analyst="alice")
        print(result["answer"], result["privacy"]["remaining_epsilon"])
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Optional

from repro.serving.protocol import ServingError, decode_line, encode_message

__all__ = ["ServingClient"]


class ServingClient:
    """A blocking JSON-line connection to a :class:`QueryServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and return the server's ``result`` payload.

        ``None``-valued fields are dropped so optional parameters can be
        passed through unconditionally.  Raises :class:`ServingError` with the
        server's structured code on failure.
        """
        request_id = next(self._ids)
        message = {"op": op, "id": request_id}
        message.update({key: value for key, value in fields.items() if value is not None})
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("internal", "server closed the connection")
        response = decode_line(line)
        if not response.get("ok"):
            raise ServingError.from_payload(response.get("error", {}))
        return response.get("result", {})

    # ------------------------------------------------------------------
    # convenience wrappers, one per protocol op
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def register(self, name: str, kind: str, **params: Any) -> dict:
        return self.request("register", name=name, kind=kind, **params)

    def query(
        self,
        database: str,
        mechanism: str,
        epsilon: float,
        sql: Optional[str] = None,
        query: Optional[str] = None,
        k: Optional[int] = None,
        trials: Optional[int] = None,
        analyst: Optional[str] = None,
    ) -> dict:
        return self.request(
            "query",
            database=database,
            mechanism=mechanism,
            epsilon=epsilon,
            sql=sql,
            query=query,
            k=k,
            trials=trials,
            analyst=analyst,
        )

    def budget(self, analyst: Optional[str] = None) -> dict:
        return self.request("budget", analyst=analyst)

    def stats(self) -> dict:
        return self.request("stats")

    def telemetry(self) -> dict:
        """The server's unified telemetry snapshot plus Prometheus text
        (``result["telemetry"]`` / ``result["prometheus"]``)."""
        return self.request("telemetry")

    def health(self) -> dict:
        return self.request("health")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
