"""The nine SSB star-join queries of the paper's evaluation (Appendix A.1).

Each query is reproduced from the appendix SQL, with its predicate domain
sizes annotated:

=======  =====================  =============================================
Query    Aggregate              Predicates (domain sizes)
=======  =====================  =============================================
Qc1      COUNT(*)               Date.year = 1993                        (7)
Qc2      COUNT(*)               Part.category, Supplier.region          (25×5)
Qc3      COUNT(*)               Customer.region, Supplier.region,
                                Date.year ∈ [1992, 1997]                (5×5×7)
Qc4      COUNT(*)               Customer.region, Supplier.nation,
                                Date.year ∈ [1997, 1998],
                                Part.mfgr ∈ {MFGR#1, MFGR#2}            (5×25×7×5)
Qs2–Qs4  SUM(revenue)           same predicates as Qc2–Qc4
Qg2      SUM(revenue)           Qc2 predicates, GROUP BY year, brand
Qg4      SUM(revenue−supplycost) Qc4 predicates, GROUP BY year, category
=======  =====================  =============================================

Queries are constructed against the SSB schema's attribute domains so their
noise calibration matches the paper's domain-size table exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.predicates import PointPredicate, Predicate, RangePredicate, SetPredicate
from repro.db.query import StarJoinQuery
from repro.db.schema import StarSchema
from repro.exceptions import QueryError

__all__ = [
    "SSB_QUERY_NAMES",
    "ssb_query",
    "all_ssb_queries",
    "count_queries",
    "sum_queries",
    "groupby_queries",
]

SSB_QUERY_NAMES = ("Qc1", "Qc2", "Qc3", "Qc4", "Qs2", "Qs3", "Qs4", "Qg2", "Qg4")


def _point(schema: StarSchema, table: str, attribute: str, value) -> PointPredicate:
    domain = schema.table_schema(table).domain_of(attribute)
    return PointPredicate(table=table, attribute=attribute, domain=domain, value=value)


def _range(schema: StarSchema, table: str, attribute: str, low, high) -> RangePredicate:
    domain = schema.table_schema(table).domain_of(attribute)
    return RangePredicate(table=table, attribute=attribute, domain=domain, low=low, high=high)


def _set(schema: StarSchema, table: str, attribute: str, values) -> SetPredicate:
    domain = schema.table_schema(table).domain_of(attribute)
    return SetPredicate(table=table, attribute=attribute, domain=domain, values=tuple(values))


def _predicates_q1(schema: StarSchema) -> list[Predicate]:
    return [_point(schema, "Date", "year", 1993)]


def _predicates_q2(schema: StarSchema) -> list[Predicate]:
    return [
        _point(schema, "Part", "category", "MFGR#12"),
        _point(schema, "Supplier", "region", "AMERICA"),
    ]


def _predicates_q3(schema: StarSchema) -> list[Predicate]:
    return [
        _point(schema, "Customer", "region", "ASIA"),
        _point(schema, "Supplier", "region", "ASIA"),
        _range(schema, "Date", "year", 1992, 1997),
    ]


def _predicates_q4(schema: StarSchema) -> list[Predicate]:
    return [
        _point(schema, "Customer", "region", "AMERICA"),
        _point(schema, "Supplier", "nation", "UNITED STATES"),
        _range(schema, "Date", "year", 1997, 1998),
        _set(schema, "Part", "mfgr", ("MFGR#1", "MFGR#2")),
    ]


def ssb_query(name: str, schema: Optional[StarSchema] = None) -> StarJoinQuery:
    """Build one of the nine SSB evaluation queries by name."""
    schema = schema or ssb_schema()
    builders = {
        "Qc1": lambda: StarJoinQuery.count("Qc1", _predicates_q1(schema)),
        "Qc2": lambda: StarJoinQuery.count("Qc2", _predicates_q2(schema)),
        "Qc3": lambda: StarJoinQuery.count("Qc3", _predicates_q3(schema)),
        "Qc4": lambda: StarJoinQuery.count("Qc4", _predicates_q4(schema)),
        "Qs2": lambda: StarJoinQuery.sum("Qs2", "revenue", _predicates_q2(schema)),
        "Qs3": lambda: StarJoinQuery.sum("Qs3", "revenue", _predicates_q3(schema)),
        "Qs4": lambda: StarJoinQuery.sum("Qs4", "revenue", _predicates_q4(schema)),
        "Qg2": lambda: StarJoinQuery.sum(
            "Qg2",
            "revenue",
            _predicates_q2(schema),
            group_by=[("Date", "year"), ("Part", "brand")],
        ),
        "Qg4": lambda: StarJoinQuery.sum(
            "Qg4",
            "revenue",
            _predicates_q4(schema),
            measure_subtract="supplycost",
            group_by=[("Date", "year"), ("Part", "category")],
        ),
    }
    try:
        return builders[name]()
    except KeyError:
        raise QueryError(
            f"unknown SSB query {name!r}; available: {SSB_QUERY_NAMES}"
        ) from None


def all_ssb_queries(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    """All nine evaluation queries, in the paper's order."""
    schema = schema or ssb_schema()
    return [ssb_query(name, schema) for name in SSB_QUERY_NAMES]


def count_queries(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    schema = schema or ssb_schema()
    return [ssb_query(name, schema) for name in ("Qc1", "Qc2", "Qc3", "Qc4")]


def sum_queries(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    schema = schema or ssb_schema()
    return [ssb_query(name, schema) for name in ("Qs2", "Qs3", "Qs4")]


def groupby_queries(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    schema = schema or ssb_schema()
    return [ssb_query(name, schema) for name in ("Qg2", "Qg4")]


def queries_by_names(
    names: Sequence[str], schema: Optional[StarSchema] = None
) -> list[StarJoinQuery]:
    """Build several SSB queries at once (evaluation-harness convenience)."""
    schema = schema or ssb_schema()
    return [ssb_query(name, schema) for name in names]
