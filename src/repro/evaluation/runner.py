"""Experiment runner: mechanism factories and repeated-trial evaluation.

The paper reports, for every (mechanism, query, ε) combination, the average
relative error and running time over 10 independent runs.  This module
provides exactly that loop plus the registry that builds a mechanism by its
paper name ("PM", "R2T", "LS", "TM", "LM" for star-join queries; "PM", "R2T",
"TM" for k-star queries), so the experiment drivers stay declarative.
Unsupported (mechanism, query) combinations — LS on SUM, R2T on GROUP BY — are
reported as such instead of failing, matching the "Not supported" entries of
Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.baselines import (
    LocalSensitivityMechanism,
    OutputLaplaceMechanism,
    RaceToTheTop,
    TruncationMechanism,
)
from repro.core.predicate_mechanism import PredicateMechanism
from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.db.query import StarJoinQuery
from repro.dp.neighboring import PrivacyScenario
from repro.evaluation.metrics import answer_relative_error
from repro.exceptions import ReproError, UnsupportedQueryError
from repro.graph.dp_kstar import KStarPM, KStarR2T, KStarTM
from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count
from repro.rng import RngLike, spawn

__all__ = [
    "EvaluationResult",
    "make_star_mechanism",
    "make_kstar_mechanism",
    "evaluate_mechanism",
    "evaluate_kstar_mechanism",
    "STAR_MECHANISMS",
    "KSTAR_MECHANISMS",
]


@dataclass
class EvaluationResult:
    """Aggregate of repeated trials of one mechanism on one query."""

    mechanism: str
    query: str
    epsilon: float
    relative_errors: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    #: Per-trial noisy answers (floats, or GroupedResult for GROUP BY
    #: queries), in trial order.  Populated only under
    #: ``record_answers=True`` — the serving layer returns these to the
    #: analyst; offline sweeps leave the list empty so thousands of cells
    #: do not pin (and pickle back) answers nothing reads.
    answers: list = field(default_factory=list)
    unsupported: bool = False
    message: str = ""

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean(self.relative_errors)) if self.relative_errors else float("nan")

    @property
    def median_relative_error(self) -> float:
        return float(np.median(self.relative_errors)) if self.relative_errors else float("nan")

    @property
    def std_relative_error(self) -> float:
        """Sample standard deviation (``ddof=1``) of the per-trial errors.

        Undefined (NaN, without a runtime warning) below two trials — the
        population formula silently reported 0 spread for single-trial runs.
        """
        if len(self.relative_errors) < 2:
            return float("nan")
        return float(np.std(self.relative_errors, ddof=1))

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times)) if self.times else float("nan")


# ----------------------------------------------------------------------
# mechanism factories
# ----------------------------------------------------------------------
def make_star_mechanism(
    name: str,
    epsilon: float,
    scenario: Optional[PrivacyScenario] = None,
    rng: RngLike = None,
    **kwargs,
):
    """Build a star-join mechanism by its paper name."""
    factories: dict[str, Callable] = {
        "PM": lambda: PredicateMechanism(epsilon=epsilon, rng=rng),
        "R2T": lambda: RaceToTheTop(epsilon=epsilon, scenario=scenario, rng=rng, **kwargs),
        "LS": lambda: LocalSensitivityMechanism(
            epsilon=epsilon, scenario=scenario, rng=rng, **kwargs
        ),
        "TM": lambda: TruncationMechanism(epsilon=epsilon, scenario=scenario, rng=rng, **kwargs),
        "LM": lambda: OutputLaplaceMechanism(epsilon=epsilon, scenario=scenario, rng=rng, **kwargs),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ReproError(
            f"unknown star-join mechanism {name!r}; available: {sorted(factories)}"
        ) from None


STAR_MECHANISMS = ("PM", "R2T", "LS", "TM", "LM")


def make_kstar_mechanism(name: str, epsilon: float, rng: RngLike = None, **kwargs):
    """Build a k-star mechanism by its paper name."""
    factories: dict[str, Callable] = {
        "PM": lambda: KStarPM(epsilon=epsilon, rng=rng),
        "R2T": lambda: KStarR2T(epsilon=epsilon, rng=rng, **kwargs),
        "TM": lambda: KStarTM(epsilon=epsilon, rng=rng, **kwargs),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ReproError(
            f"unknown k-star mechanism {name!r}; available: {sorted(factories)}"
        ) from None


KSTAR_MECHANISMS = ("PM", "R2T", "TM")


# ----------------------------------------------------------------------
# repeated-trial evaluation
# ----------------------------------------------------------------------
def evaluate_mechanism(
    mechanism,
    database: StarDatabase,
    query: StarJoinQuery,
    trials: int = 10,
    rng: RngLike = None,
    exact_answer=None,
    engine: Optional[ExecutionEngine] = None,
    record_answers: bool = False,
) -> EvaluationResult:
    """Run ``mechanism`` on ``query`` for several trials and aggregate errors.

    ``record_answers=True`` additionally keeps every trial's noisy answer in
    ``result.answers`` (the serving layer returns them to the analyst);
    recording consumes no randomness, so it never changes the numbers.

    The mechanism must expose ``answer_value(database, query, rng=...)`` — the
    shared interface of PM and all baselines.  Combinations the mechanism does
    not support are reported with ``unsupported=True``.

    One :class:`~repro.db.engine.ExecutionEngine` (``engine`` or the
    database's shared one) serves every trial, so the exact answer, selection
    masks and fan-out statistics are computed once per query rather than once
    per trial.  Where those artefacts actually live is the engine's cache
    backend (:mod:`repro.db.cache`): under the run-wide shared backend a
    trial may be served by work another worker process already did, which is
    safe because every cached value is a pure function of its key — the
    evaluation numbers are bit-identical for any backend and any job count.
    Pass an explicit ``engine`` only for isolation (ablations, tests); it
    carries a private in-process backend.

    All ``trials`` runs are evaluated inside this one call — one timed block
    per trial — from generators split off ``rng``.  Pass the cell's
    :class:`~numpy.random.SeedSequence` (see
    :func:`repro.evaluation.experiments.common.cell_stream`) to make the
    trial streams a pure function of the cell label, independent of which
    process evaluates the cell.
    """
    name = getattr(mechanism, "name", type(mechanism).__name__)
    epsilon = float(getattr(mechanism, "epsilon", float("nan")))
    result = EvaluationResult(mechanism=name, query=query.name, epsilon=epsilon)
    if exact_answer is None:
        exact_answer = QueryExecutor(database, engine=engine).execute(query)

    trial_rngs = spawn(rng, trials)
    for trial_rng in trial_rngs:
        start = time.perf_counter()
        try:
            noisy = mechanism.answer_value(database, query, rng=trial_rng)
        except UnsupportedQueryError as error:
            result.unsupported = True
            result.message = str(error)
            return result
        elapsed = time.perf_counter() - start
        result.times.append(elapsed)
        if record_answers:
            result.answers.append(noisy)
        result.relative_errors.append(answer_relative_error(exact_answer, noisy))
    return result


def evaluate_kstar_mechanism(
    mechanism,
    graph: Graph,
    query: KStarQuery,
    trials: int = 10,
    rng: RngLike = None,
    exact_answer: Optional[float] = None,
    record_answers: bool = False,
) -> EvaluationResult:
    """Repeated-trial evaluation for k-star mechanisms.

    Batched exactly like :func:`evaluate_mechanism`: all trials run inside
    this call from generators split off ``rng`` (a per-cell
    :class:`~numpy.random.SeedSequence` makes them order- and
    process-independent), and ``record_answers=True`` keeps the per-trial
    noisy answers without consuming randomness.
    """
    name = getattr(mechanism, "name", type(mechanism).__name__)
    epsilon = float(getattr(mechanism, "epsilon", float("nan")))
    result = EvaluationResult(mechanism=name, query=query.label, epsilon=epsilon)
    if exact_answer is None:
        exact_answer = kstar_count(graph, query)

    trial_rngs = spawn(rng, trials)
    for trial_rng in trial_rngs:
        start = time.perf_counter()
        try:
            noisy = mechanism.answer_value(graph, query, rng=trial_rng)
        except UnsupportedQueryError as error:
            result.unsupported = True
            result.message = str(error)
            return result
        elapsed = time.perf_counter() - start
        result.times.append(elapsed)
        if record_answers:
            result.answers.append(noisy)
        result.relative_errors.append(answer_relative_error(exact_answer, noisy))
    return result
