"""Star-join workload queries under DP — paper Algorithm 4.

A *workload* is a collection of l star-join queries that share the same
predicate attributes (Section 5.3, queries W1 and W2 in the evaluation).  Two
mechanisms are provided:

* :class:`IndependentPMWorkload` — the straightforward baseline: each query is
  answered independently with the Predicate Mechanism, so under sequential
  composition each query receives ε / l.
* :class:`WorkloadDecomposition` (WD) — Algorithm 4: the per-attribute
  predicate matrices P_i are decomposed into strategy matrices A_i
  (Definition 5.1), only the strategy rows are perturbed with PMA, and the
  noisy workload predicate matrices are reconstructed as P̂_i = X_i Â_i before
  answering the whole workload against the data cube.  Because the strategy
  typically has far fewer rows than the workload, each row receives a larger
  budget and WD dominates the independent baseline (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.matrix_decomposition import (
    MatrixDecomposition,
    StrategyChoice,
    predicate_from_indicator,
)
from repro.core.pma import PredicateMechanismForAttribute
from repro.core.predicate_mechanism import PredicateMechanism
from repro.db.database import StarDatabase
from repro.db.domains import AttributeDomain
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.db.predicates import TruePredicate
from repro.db.query import AggregateKind, Measure, StarJoinQuery
from repro.exceptions import PrivacyBudgetError, QueryError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "WorkloadAttribute",
    "workload_attributes",
    "build_data_cube",
    "answer_workload_exact",
    "IndependentPMWorkload",
    "WorkloadDecomposition",
    "WorkloadAnswer",
]


@dataclass(frozen=True)
class WorkloadAttribute:
    """One predicate attribute shared by the workload queries."""

    table: str
    attribute: str
    domain: AttributeDomain

    @property
    def key(self) -> tuple[str, str]:
        return (self.table, self.attribute)


def workload_attributes(queries: Sequence[StarJoinQuery]) -> list[WorkloadAttribute]:
    """Collect the predicate attributes referenced anywhere in the workload.

    Every query may reference each attribute at most once; queries that do not
    constrain an attribute are treated as selecting its full domain.
    """
    if not queries:
        raise QueryError("a workload must contain at least one query")
    seen: dict[tuple[str, str], WorkloadAttribute] = {}
    for query in queries:
        per_query: set[tuple[str, str]] = set()
        for predicate in query.predicates:
            key = (predicate.table, predicate.attribute)
            if key in per_query:
                raise QueryError(
                    f"query {query.name!r} has two predicates on {key}; workloads "
                    "require at most one predicate per attribute"
                )
            per_query.add(key)
            seen.setdefault(
                key,
                WorkloadAttribute(
                    table=predicate.table,
                    attribute=predicate.attribute,
                    domain=predicate.domain,
                ),
            )
    return list(seen.values())


def _indicator_for(query: StarJoinQuery, attribute: WorkloadAttribute) -> np.ndarray:
    for predicate in query.predicates:
        if (predicate.table, predicate.attribute) == attribute.key:
            return predicate.indicator_vector()
    return np.ones(attribute.domain.size, dtype=np.float64)


def predicate_matrices(
    queries: Sequence[StarJoinQuery], attributes: Sequence[WorkloadAttribute]
) -> list[np.ndarray]:
    """One ``l × |dom(a_i)|`` predicate matrix per workload attribute."""
    return [
        np.vstack([_indicator_for(query, attribute) for query in queries])
        for attribute in attributes
    ]


# ----------------------------------------------------------------------
# data cube
# ----------------------------------------------------------------------
def build_data_cube(
    database: StarDatabase,
    attributes: Sequence[WorkloadAttribute],
    kind: AggregateKind = AggregateKind.COUNT,
    measure: Optional[Union[str, Measure]] = None,
    engine: Optional[ExecutionEngine] = None,
) -> np.ndarray:
    """Aggregate the fact table into a cube over the workload attributes.

    ``cube[c_1, ..., c_n]`` is the number of fact rows (COUNT) or the summed
    measure (SUM) whose joined dimension attributes carry the ordinal codes
    ``c_1 .. c_n``.  Workload answers are contractions of this cube with the
    per-attribute predicate indicators.

    Cubes are memoized in the database's shared
    :class:`~repro.db.engine.ExecutionEngine` and built with ``np.bincount``
    over ``np.ravel_multi_index`` composite codes.  SUM cubes resolve the
    measure through the same accessor as the exact executor
    (:meth:`ExecutionEngine.measure_values`), so cube-based and
    executor-based SUM answers agree; ``measure`` may be a bare column name
    or a :class:`~repro.db.query.Measure` expression.
    """
    if kind is AggregateKind.AVG:
        raise UnsupportedQueryError("workload answering does not support AVG")
    if kind is not AggregateKind.COUNT and measure is None:
        raise QueryError("SUM workloads require a measure column")
    engine = engine if engine is not None else ExecutionEngine.for_database(database)
    for attribute in attributes:
        if attribute.table != database.fact.name and not database.is_direct_dimension(
            attribute.table
        ):
            raise UnsupportedQueryError(
                "workload attributes must live on the fact table or a direct "
                "dimension table"
            )
    return engine.data_cube(attributes, kind=kind, measure=measure)


def contract_cube(cube: np.ndarray, indicators: Sequence[np.ndarray]) -> float:
    """Contract ``cube`` with one indicator vector per axis."""
    result = cube
    for indicator in indicators:
        result = np.tensordot(np.asarray(indicator, dtype=np.float64), result, axes=(0, 0))
    return float(result)


def answer_workload_exact(
    database: StarDatabase,
    queries: Sequence[StarJoinQuery],
    engine: Optional[ExecutionEngine] = None,
) -> np.ndarray:
    """Exact answers of every workload query (via the star-join executor)."""
    executor = QueryExecutor(database, engine=engine)
    return np.array([executor.execute(query) for query in queries], dtype=np.float64)


# ----------------------------------------------------------------------
# mechanisms
# ----------------------------------------------------------------------
@dataclass
class WorkloadAnswer:
    """Noisy workload answers plus the decomposition metadata that produced them."""

    values: np.ndarray
    epsilon: float
    strategies: dict[tuple[str, str], StrategyChoice]


class IndependentPMWorkload:
    """Answer each workload query independently with PM (budget ε / l each)."""

    name = "PM"

    def __init__(self, epsilon: float, rng: RngLike = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(rng)

    def answer(
        self,
        database: StarDatabase,
        queries: Sequence[StarJoinQuery],
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> WorkloadAnswer:
        generator = ensure_rng(rng) if rng is not None else self._rng
        if not queries:
            raise QueryError("workload must contain at least one query")
        per_query_epsilon = self.epsilon / len(queries)
        executor = QueryExecutor(database, engine=engine)
        values = []
        for query in queries:
            mechanism = PredicateMechanism(epsilon=per_query_epsilon, rng=generator)
            values.append(float(mechanism.answer_value(database, query, executor=executor)))
        return WorkloadAnswer(
            values=np.array(values, dtype=np.float64),
            epsilon=self.epsilon,
            strategies={},
        )


class WorkloadDecomposition:
    """Algorithm 4: Predicate Mechanism for star-join workload queries (WD)."""

    name = "WD"

    def __init__(
        self,
        epsilon: float,
        rng: RngLike = None,
        decomposer: Optional[MatrixDecomposition] = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(rng)
        self.decomposer = decomposer or MatrixDecomposition()

    def answer(
        self,
        database: StarDatabase,
        queries: Sequence[StarJoinQuery],
        rng: RngLike = None,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[str, Measure]] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> WorkloadAnswer:
        """Answer the workload with the WD strategy.

        All queries must share the same aggregate ``kind`` (and ``measure``
        for SUM workloads); GROUP BY workload queries are not supported, as in
        the paper.
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        attributes = workload_attributes(queries)
        if not attributes:
            raise QueryError("workload queries carry no predicates to decompose")
        matrices = predicate_matrices(queries, attributes)
        cube = build_data_cube(database, attributes, kind=kind, measure=measure, engine=engine)

        per_attribute_epsilon = self.epsilon / len(attributes)
        strategies: dict[tuple[str, str], StrategyChoice] = {}
        noisy_matrices: list[np.ndarray] = []
        for attribute, matrix in zip(attributes, matrices):
            choice = self.decomposer.decompose(matrix)
            strategies[attribute.key] = choice
            per_row_epsilon = per_attribute_epsilon / max(choice.num_rows, 1)
            pma = PredicateMechanismForAttribute(epsilon=per_row_epsilon)
            noisy_strategy_rows = []
            for row in choice.strategy:
                predicate = predicate_from_indicator(
                    row, attribute.domain, attribute.table, attribute.attribute
                )
                noisy_predicate = pma.perturb(predicate, rng=generator)
                noisy_strategy_rows.append(noisy_predicate.indicator_vector())
            noisy_strategy = np.vstack(noisy_strategy_rows)
            noisy_matrices.append(choice.solution @ noisy_strategy)

        values = np.array(
            [
                contract_cube(cube, [noisy[j] for noisy in noisy_matrices])
                for j in range(len(queries))
            ],
            dtype=np.float64,
        )
        return WorkloadAnswer(values=values, epsilon=self.epsilon, strategies=strategies)
