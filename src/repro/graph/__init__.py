"""Graph substrate for k-star counting queries (paper Section 6).

The paper evaluates DP-starJ not only on warehouse star-joins but also on
k-star counting queries over graphs — self-joins of an edge table, which are
"a representative instance of star-join in specific applications".  This
subpackage provides:

* :class:`~repro.graph.edge_table.Graph` — an undirected graph stored as a
  numpy edge list, with a relational edge-table view;
* :mod:`~repro.graph.kstar` — exact k-star counting (degree based, plus a
  join-based reference used in tests) and the k-star query object;
* :mod:`~repro.graph.generators` — synthetic power-law graphs standing in for
  the Deezer and Amazon datasets (see DESIGN.md for the substitution);
* :mod:`~repro.graph.dp_kstar` — PM, R2T and TM adapted to k-star counting.
"""

from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count, kstar_count_by_join
from repro.graph.generators import amazon_like, deezer_like, powerlaw_graph
from repro.graph.dp_kstar import KStarPM, KStarR2T, KStarTM

__all__ = [
    "Graph",
    "KStarQuery",
    "kstar_count",
    "kstar_count_by_join",
    "powerlaw_graph",
    "deezer_like",
    "amazon_like",
    "KStarPM",
    "KStarR2T",
    "KStarTM",
]
