"""Snowflake-schema generator (TPC-H style), for the Figure 10 experiments.

The paper extends PM from star to snowflake queries by hierarchising a
dimension table: its example decomposes ``Date`` so that month information
lives in a separate ``Month`` dimension referenced by ``Date`` through a
foreign key (``Date.MK → Month.MK``), turning the predicate
``Date.month < 7`` into ``Date.MK = Month.MK AND Month.month < 7``.

This generator reuses the SSB generator and normalises the schema exactly
that way, standing in for the TPC-H data the paper runs its snowflake queries
(Qtc, Qts) on — the experiment only exercises PM's behaviour on a hierarchised
dimension, which this structure provides (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datagen.ssb import (
    DAYS_PER_YEAR,
    MONTHS,
    SSBConfig,
    SSBGenerator,
    YEARS,
    _domains,
    ssb_schema,
)
from repro.db.database import StarDatabase
from repro.db.schema import SnowflakeEdge, StarSchema, TableSchema
from repro.db.table import Column, Table
from repro.rng import RngLike

__all__ = ["SnowflakeConfig", "SnowflakeGenerator", "snowflake_schema"]


@dataclass
class SnowflakeConfig(SSBConfig):
    """Configuration of the snowflake generator (same knobs as SSB)."""


def snowflake_schema() -> StarSchema:
    """The SSB schema with ``Date`` normalised into a ``Month`` dimension."""
    base = ssb_schema()
    domains = _domains()
    month = TableSchema(
        name="Month",
        key="MK",
        attributes={"month": domains["month"], "year": domains["year"]},
    )
    # Date keeps its year attribute but delegates month to the Month table,
    # which is only reachable through the snowflake edge Date.MK → Month.MK.
    date = TableSchema(name="Date", key="DK", attributes={"year": domains["year"]})
    return StarSchema(
        fact=base.fact,
        dimensions=[
            date,
            base.dimensions["Customer"],
            base.dimensions["Supplier"],
            base.dimensions["Part"],
            month,
        ],
        foreign_keys=list(base.foreign_keys.values()),
        snowflake_edges=[
            SnowflakeEdge(
                child_table="Date", child_column="MK", parent_table="Month", parent_key="MK"
            )
        ],
    )


class SnowflakeGenerator:
    """Generate a snowflake instance: SSB with ``Date`` → ``Month`` normalised."""

    def __init__(self, config: Optional[SnowflakeConfig] = None, rng: RngLike = None):
        self.config = config or SnowflakeConfig()
        self._ssb = SSBGenerator(self.config, rng=rng)
        self.schema = snowflake_schema()
        self._domains = _domains()

    def build(self) -> StarDatabase:
        star = self._ssb.build()

        # Month dimension: one row per (year, month) pair.
        num_months = len(YEARS) * len(MONTHS)
        month_index = np.arange(num_months, dtype=np.int64)
        month_table = Table(
            "Month",
            [
                Column(name="MK", values=month_index),
                Column(name="year", values=month_index // len(MONTHS), domain=self._domains["year"]),
                Column(name="month", values=month_index % len(MONTHS), domain=self._domains["month"]),
            ],
        )

        # Rebuild Date with an MK foreign key into Month (derived from the
        # day index) and without its month attribute.
        old_date = star.dimensions["Date"]
        day_index = old_date.codes("DK")
        year_codes = old_date.codes("year")
        day_of_year = day_index % DAYS_PER_YEAR
        month_of_year = np.minimum(day_of_year // 31, len(MONTHS) - 1)
        month_keys = year_codes * len(MONTHS) + month_of_year
        date_table = Table(
            "Date",
            [
                Column(name="DK", values=day_index),
                Column(name="year", values=year_codes, domain=self._domains["year"]),
                Column(name="MK", values=month_keys.astype(np.int64)),
            ],
        )

        dimensions = dict(star.dimensions)
        dimensions["Date"] = date_table
        dimensions["Month"] = month_table
        return StarDatabase(schema=self.schema, fact=star.fact, dimensions=dimensions)

    def spill_to(self, path, overwrite: bool = False):
        """Generate the instance and write it as the mapped on-disk layout.

        Same contract as :meth:`repro.datagen.ssb.SSBGenerator.spill_to`:
        returns the manifest path for read-only attachment via
        :func:`repro.db.storage.attach_database`.
        """
        return self.build().spill_to(path, overwrite=overwrite)
