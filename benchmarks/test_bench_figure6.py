"""Benchmark: regenerate Figure 6 (error vs the global-sensitivity bound GS_Q).

Expected shape (paper Figure 6): PM is insensitive to GS_Q (its noise depends
only on the query's predicate domains), while the errors of R2T and the
GS-calibrated LS variant climb rapidly as the declared bound grows.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure6


def test_figure6(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure6.run(bench_config), rounds=1, iterations=1)
    record_result(result, "figure6")

    bounds = sorted({row["gs_bound"] for row in result.rows})
    for query in figure6.QUERIES:
        pm_errors = [
            np.mean(errors_of(result, mechanism="PM", query=query, gs_bound=bound))
            for bound in bounds
        ]
        ls_errors = [
            np.mean(errors_of(result, mechanism="LS", query=query, gs_bound=bound))
            for bound in bounds
        ]
        # PM flat, LS strongly increasing with the bound.
        assert max(pm_errors) - min(pm_errors) < 1e-9
        assert ls_errors[-1] > 10 * ls_errors[0] or ls_errors[-1] > 1000.0

    # At the largest bound every baseline is far worse than PM.
    largest = bounds[-1]
    pm = np.mean(errors_of(result, mechanism="PM", gs_bound=largest))
    r2t = np.mean(errors_of(result, mechanism="R2T", gs_bound=largest))
    ls = np.mean(errors_of(result, mechanism="LS", gs_bound=largest))
    assert pm < r2t
    assert pm < ls
