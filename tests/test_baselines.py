"""Tests for the baseline mechanisms: LM, LS, TM and R2T."""

import numpy as np
import pytest

from repro.baselines import (
    LocalSensitivityMechanism,
    OutputLaplaceMechanism,
    RaceToTheTop,
    TruncationMechanism,
)
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.query import StarJoinQuery
from repro.dp.neighboring import PrivacyScenario
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.workloads.ssb_queries import ssb_query


@pytest.fixture()
def private_entities():
    return PrivacyScenario.dimensions("Customer", "Supplier", "Part")


class TestOutputLaplace:
    def test_fact_only_count(self, ssb_small):
        mechanism = OutputLaplaceMechanism(epsilon=5.0, scenario=PrivacyScenario.fact_only())
        exact = QueryExecutor(ssb_small).execute(ssb_query("Qc1"))
        noisy = mechanism.answer_value(ssb_small, ssb_query("Qc1"), rng=1)
        assert abs(noisy - exact) < 10.0

    def test_private_dimension_unsupported(self, ssb_small, private_entities):
        mechanism = OutputLaplaceMechanism(epsilon=1.0, scenario=private_entities)
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qc1"))

    def test_sum_uses_measure_bound(self, ssb_small):
        mechanism = OutputLaplaceMechanism(
            epsilon=1.0, scenario=PrivacyScenario.fact_only(), measure_bound=100.0
        )
        value = mechanism.answer_value(ssb_small, ssb_query("Qs2"), rng=2)
        assert isinstance(value, float)

    def test_group_by_perturbs_every_group(self, ssb_small):
        mechanism = OutputLaplaceMechanism(epsilon=1.0, scenario=PrivacyScenario.fact_only())
        exact = QueryExecutor(ssb_small).execute(ssb_query("Qg2"))
        noisy = mechanism.answer_value(ssb_small, ssb_query("Qg2"), rng=3)
        assert isinstance(noisy, GroupedResult)
        assert set(noisy.groups) == set(exact.groups)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            OutputLaplaceMechanism(epsilon=0.0)


class TestLocalSensitivity:
    def test_count_answer_is_float(self, ssb_small, private_entities):
        mechanism = LocalSensitivityMechanism(epsilon=1.0, scenario=private_entities)
        assert isinstance(mechanism.answer_value(ssb_small, ssb_query("Qc2"), rng=1), float)

    def test_sum_unsupported(self, ssb_small, private_entities):
        mechanism = LocalSensitivityMechanism(epsilon=1.0, scenario=private_entities)
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qs2"))

    def test_group_by_unsupported(self, ssb_small, private_entities):
        mechanism = LocalSensitivityMechanism(epsilon=1.0, scenario=private_entities)
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qg2"))

    def test_local_bound_is_max_over_private_dimensions(self, tiny_db):
        scenario = PrivacyScenario.dimensions("Color", "Size")
        mechanism = LocalSensitivityMechanism(epsilon=1.0, scenario=scenario)
        query = StarJoinQuery.count("all")
        # Colour fan-out 2, size fan-out 3.
        assert mechanism.local_sensitivity_bound(tiny_db, query) == 3.0

    def test_fact_only_scenario_bound_is_one(self, tiny_db):
        mechanism = LocalSensitivityMechanism(
            epsilon=1.0, scenario=PrivacyScenario.fact_only()
        )
        assert mechanism.local_sensitivity_bound(tiny_db, StarJoinQuery.count("all")) == 1.0

    def test_laplace_variant(self, ssb_small, private_entities):
        mechanism = LocalSensitivityMechanism(
            epsilon=1.0, scenario=private_entities, variant="laplace", delta=1e-6
        )
        assert isinstance(mechanism.answer_value(ssb_small, ssb_query("Qc3"), rng=2), float)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            LocalSensitivityMechanism(epsilon=1.0, variant="gauss")

    def test_noise_grows_with_sensitivity(self, ssb_small, private_entities):
        """Qc1 (Date only, low restricted fan-out) should typically see less
        noise than Qc4 relative to its answer under the same seed set."""
        executor = QueryExecutor(ssb_small)
        exact2 = executor.execute(ssb_query("Qc2"))
        mech = LocalSensitivityMechanism(epsilon=1.0, scenario=private_entities)
        deviations = [
            abs(mech.answer_value(ssb_small, ssb_query("Qc2"), rng=seed) - exact2)
            for seed in range(10)
        ]
        assert np.median(deviations) > 0.0


class TestTruncation:
    def test_count_answer(self, ssb_small, private_entities):
        mechanism = TruncationMechanism(epsilon=1.0, scenario=private_entities)
        assert isinstance(mechanism.answer_value(ssb_small, ssb_query("Qc2"), rng=1), float)

    def test_explicit_threshold_and_bias(self, tiny_db):
        mechanism = TruncationMechanism(
            epsilon=1.0,
            scenario=PrivacyScenario.dimensions("Size"),
            threshold=1.0,
            truncation_dimension="Size",
        )
        query = StarJoinQuery.count("all")
        # Each of the 4 size keys contributes 3 rows; truncation at 1 keeps 4.
        assert mechanism.truncation_bias(tiny_db, query, threshold=1.0) == pytest.approx(8.0)

    def test_zero_bias_with_large_threshold(self, tiny_db):
        mechanism = TruncationMechanism(
            epsilon=1.0,
            scenario=PrivacyScenario.dimensions("Size"),
            truncation_dimension="Size",
        )
        assert mechanism.truncation_bias(
            tiny_db, StarJoinQuery.count("all"), threshold=100.0
        ) == pytest.approx(0.0)

    def test_group_by_unsupported(self, ssb_small, private_entities):
        mechanism = TruncationMechanism(epsilon=1.0, scenario=private_entities)
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qg2"))

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            TruncationMechanism(epsilon=1.0, threshold_quantile=0.0)


class TestRaceToTheTop:
    def test_answer_close_to_truth_at_large_epsilon(self, ssb_small, private_entities):
        executor = QueryExecutor(ssb_small)
        query = ssb_query("Qc1")
        exact = executor.execute(query)
        mechanism = RaceToTheTop(epsilon=50.0, scenario=private_entities, rng=1)
        noisy = mechanism.answer_value(ssb_small, query)
        assert noisy == pytest.approx(exact, rel=0.2)

    def test_never_negative(self, ssb_small, private_entities):
        mechanism = RaceToTheTop(epsilon=0.1, scenario=private_entities)
        for seed in range(5):
            assert mechanism.answer_value(ssb_small, ssb_query("Qc4"), rng=seed) >= 0.0

    def test_never_wildly_above_truth(self, ssb_small, private_entities):
        """R2T is downward biased: the winner is a truncated answer plus noise
        minus a positive penalty, so it should rarely exceed the exact count
        by a large margin."""
        executor = QueryExecutor(ssb_small)
        query = ssb_query("Qc2")
        exact = executor.execute(query)
        mechanism = RaceToTheTop(epsilon=1.0, scenario=private_entities)
        values = [mechanism.answer_value(ssb_small, query, rng=seed) for seed in range(10)]
        assert np.median(values) <= exact * 1.5

    def test_trace_has_geometric_thresholds(self, ssb_small, private_entities):
        mechanism = RaceToTheTop(
            epsilon=1.0, scenario=private_entities, global_sensitivity_bound=1024
        )
        trace = mechanism.run(ssb_small, ssb_query("Qc1"), rng=3)
        assert trace.thresholds == [2.0**j for j in range(1, 11)]
        assert len(trace.noisy_candidates) == 10

    def test_group_by_unsupported(self, ssb_small, private_entities):
        mechanism = RaceToTheTop(epsilon=1.0, scenario=private_entities)
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qg4"))

    def test_requires_private_dimension(self, ssb_small):
        mechanism = RaceToTheTop(epsilon=1.0, scenario=PrivacyScenario.fact_only())
        with pytest.raises(UnsupportedQueryError):
            mechanism.answer_value(ssb_small, ssb_query("Qc1"))

    def test_utility_bound_positive(self, ssb_small, private_entities):
        mechanism = RaceToTheTop(epsilon=1.0, scenario=private_entities)
        assert mechanism.utility_bound(ssb_small, ssb_query("Qc1")) > 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RaceToTheTop(epsilon=1.0, alpha=1.5)

    def test_sum_queries_supported(self, ssb_small, private_entities):
        mechanism = RaceToTheTop(epsilon=1.0, scenario=private_entities)
        assert isinstance(mechanism.answer_value(ssb_small, ssb_query("Qs2"), rng=2), float)
