"""Standalone perf tracker for the figure/table benchmark kernels.

Runs every experiment driver with the same configurations the pytest
benchmarks use and writes the wall-clock timings to
``benchmarks/results/BENCH_engine.json``.  The committed file is the perf
baseline this repository tracks from the execution-engine PR onward; re-run
after performance-relevant changes and compare::

    PYTHONPATH=src python benchmarks/bench_perf.py [--repeats N] [--output PATH]

Each kernel is timed with a cold generated-instance cache so numbers are
comparable run to run; within a kernel, mechanisms still share the per-database
execution engine exactly as the experiments do.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.evaluation.experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)
from repro.evaluation.experiments.common import ExperimentConfig, clear_database_cache

RESULTS_DIR = Path(__file__).parent / "results"


def _kernels():
    """(name, callable) pairs mirroring the pytest benchmark workloads."""
    quick = ExperimentConfig.quick()
    full = ExperimentConfig(epsilons=(0.1, 0.5, 1.0), trials=3, rows_per_scale_factor=240_000)
    return [
        ("table1", lambda: table1.run(quick)),
        ("table2", lambda: table2.run(quick, graph_scale=0.1)),
        ("figure4", lambda: figure4.run(full, scales=(0.25, 0.5, 1.0))),
        ("figure5", lambda: figure5.run(quick, scales=(0.25, 0.5, 1.0))),
        ("figure6", lambda: figure6.run(quick)),
        ("figure7", lambda: figure7.run(quick)),
        ("figure8", lambda: figure8.run(quick)),
        ("figure9", lambda: figure9.run(quick)),
        ("figure10", lambda: figure10.run(quick)),
        ("figure11", lambda: figure11.run(quick)),
    ]


def run_benchmarks(repeats: int = 3) -> dict:
    timings: dict[str, dict] = {}
    for name, kernel in _kernels():
        samples = []
        for _ in range(repeats):
            clear_database_cache()
            start = time.perf_counter()
            kernel()
            samples.append(time.perf_counter() - start)
        timings[name] = {
            "mean_s": round(sum(samples) / len(samples), 6),
            "min_s": round(min(samples), 6),
            "max_s": round(max(samples), 6),
            "samples": [round(sample, 6) for sample in samples],
        }
        print(f"{name:>10}: mean {timings[name]['mean_s']*1000:8.1f} ms "
              f"(min {timings[name]['min_s']*1000:.1f} ms over {repeats} repeats)")
    return {
        "schema_version": 1,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "experiments": timings,
        "total_mean_s": round(sum(t["mean_s"] for t in timings.values()), 6),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per kernel")
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_DIR / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    report = run_benchmarks(repeats=args.repeats)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output} (total mean {report['total_mean_s']:.3f} s)")


if __name__ == "__main__":
    main()
