"""Benchmark: regenerate Figure 10 (snowflake queries Qtc / Qts).

Expected shape (paper Figure 10): PM extends to snowflake queries unchanged
and outperforms the baselines; LS cannot answer the SUM query Qts.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure10


def test_figure10(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure10.run(bench_config), rounds=1, iterations=1)
    record_result(result, "figure10")

    # LS cannot answer the SUM snowflake query.
    assert errors_of(result, query="Qts", mechanism="LS") == []

    # PM answers both queries at every ε and beats LS on the count query.
    assert len(errors_of(result, mechanism="PM")) == 2 * len(figure10.SNOWFLAKE_EPSILONS)
    pm_count = np.mean(errors_of(result, query="Qtc", mechanism="PM"))
    ls_count = np.mean(errors_of(result, query="Qtc", mechanism="LS"))
    assert pm_count < ls_count

    # PM stays at its predicate-domain-driven error level on the SUM query too.
    pm_sum = np.mean(errors_of(result, query="Qts", mechanism="PM"))
    assert pm_sum < 100.0
