"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through its
experiment driver, saves the rows as CSV under ``benchmarks/results/`` and
prints the text table so a ``pytest benchmarks/ --benchmark-only -s`` run
shows the reproduced numbers next to the timings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.evaluation.experiments import ExperimentConfig
from repro.evaluation.reporting import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The laptop-friendly configuration used by all benchmark runs."""
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def full_config() -> ExperimentConfig:
    """A larger configuration for the scale-sensitive figures."""
    return ExperimentConfig(epsilons=(0.1, 0.5, 1.0), trials=3, rows_per_scale_factor=240_000)


@pytest.fixture()
def record_result():
    """Persist an ExperimentResult under benchmarks/results and echo it."""

    def _record(result: ExperimentResult, name: str) -> ExperimentResult:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        result.to_csv(RESULTS_DIR / f"{name}.csv")
        print()
        print(result.to_text())
        return result

    return _record
