"""Figure 5: running time and error of PM and R2T vs data scale (SUM).

Same sweep as Figure 4 but over the SUM queries Qs2–Qs4, where LS is not
applicable; the paper compares PM against R2T only.  The observation to
reproduce is that R2T's error on SUM queries stays high (its truncation
threshold interacts badly with heavy per-entity revenue totals) while PM's
remains at its predicate-domain-driven level regardless of scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, PAPER_SCALES, build_ssb_database, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "MECHANISMS", "QUERIES"]

MECHANISMS = ("PM", "R2T")
QUERIES = ("Qs2", "Qs3", "Qs4")


def run(
    config: Optional[ExperimentConfig] = None,
    scales: Sequence[float] = PAPER_SCALES,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 5 (SUM queries; error and running time vs scale)."""
    config = config or ExperimentConfig()
    schema = ssb_schema()
    result = ExperimentResult(
        title="Figure 5: error level and running time vs data scale (SUM queries)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    for scale in scales:
        database = build_ssb_database(config, scale_factor=scale, seed_offset=int(scale * 100))
        executor = QueryExecutor(database)
        for query_name in query_names:
            query = ssb_query(query_name, schema)
            exact = executor.execute(query)
            for mechanism_name in mechanisms:
                mechanism = make_star_mechanism(mechanism_name, epsilon, scenario=config.scenario)
                evaluation = evaluate_mechanism(
                    mechanism,
                    database,
                    query,
                    trials=config.trials,
                    rng=config.seed + cell_seed(scale, query_name, mechanism_name),
                    exact_answer=exact,
                )
                result.add_row(
                    scale=scale,
                    query=query_name,
                    mechanism=mechanism_name,
                    relative_error_pct=(
                        None if evaluation.unsupported else evaluation.mean_relative_error
                    ),
                    mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
                    fact_rows=database.num_fact_rows,
                )
    return result
