"""Table 1: relative error of PM, R2T and LS on the SSB queries.

For every privacy budget ε ∈ {0.1, 0.2, 0.5, 0.8, 1} and every SSB query
(Qc1–Qc4, Qs2–Qs4, Qg2, Qg4) the driver reports the mean relative error of
the three mechanisms over repeated runs.  Combinations the baselines cannot
answer — LS on SUM / GROUP BY, R2T on GROUP BY — appear as ``not supported``,
exactly like the paper's table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.db.executor import QueryExecutor
from repro.workloads.ssb_queries import SSB_QUERY_NAMES, ssb_query

__all__ = ["run", "MECHANISMS"]

MECHANISMS = ("PM", "R2T", "LS")


def run(
    config: Optional[ExperimentConfig] = None,
    query_names: Sequence[str] = SSB_QUERY_NAMES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Table 1.

    Returns one row per (ε, mechanism, query) with the mean relative error in
    percent (``None`` when the combination is unsupported).
    """
    config = config or ExperimentConfig()
    database = build_ssb_database(config)
    schema = ssb_schema()
    executor = QueryExecutor(database)
    queries = {name: ssb_query(name, schema) for name in query_names}
    exact = {name: executor.execute(query) for name, query in queries.items()}

    result = ExperimentResult(
        title="Table 1: relative error (%) of PM, R2T, LS on SSB queries by varying epsilon",
        notes=(
            f"SSB scale factor {config.scale_factor} "
            f"({database.num_fact_rows} fact rows), {config.trials} trials per cell, "
            f"private dimensions: {', '.join(config.private_dimensions)}."
        ),
    )
    for epsilon in config.epsilons:
        for mechanism_name in mechanisms:
            for query_name in query_names:
                mechanism = make_star_mechanism(
                    mechanism_name, epsilon, scenario=config.scenario
                )
                evaluation = evaluate_mechanism(
                    mechanism,
                    database,
                    queries[query_name],
                    trials=config.trials,
                    rng=config.seed + cell_seed(epsilon, mechanism_name, query_name),
                    exact_answer=exact[query_name],
                )
                result.add_row(
                    epsilon=epsilon,
                    mechanism=mechanism_name,
                    query=query_name,
                    relative_error_pct=(
                        None if evaluation.unsupported else evaluation.mean_relative_error
                    ),
                    supported=not evaluation.unsupported,
                    mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
                )
    return result
