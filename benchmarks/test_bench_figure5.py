"""Benchmark: regenerate Figure 5 (error and time vs data scale, SUM queries).

Expected shape (paper Figure 5): R2T's error on SUM queries stays high across
scales while PM's remains at its domain-driven level; running times grow with
scale.
"""

import numpy as np

from _bench_utils import errors_of, times_of
from repro.evaluation.experiments import figure5


def test_figure5(benchmark, full_config, record_result):
    result = benchmark.pedantic(
        lambda: figure5.run(full_config, scales=(0.25, 0.5, 1.0)), rounds=1, iterations=1
    )
    record_result(result, "figure5")

    scales = sorted({row["scale"] for row in result.rows})
    pm = np.mean(errors_of(result, mechanism="PM"))
    r2t = np.mean(errors_of(result, mechanism="R2T"))
    assert pm < r2t

    # PM error does not grow with the data size (the paper's claim).
    for query in figure5.QUERIES:
        pm_errors = [
            np.mean(errors_of(result, mechanism="PM", query=query, scale=scale))
            for scale in scales
        ]
        assert pm_errors[-1] <= pm_errors[0] + 10.0

    # Running time grows with the data volume for both mechanisms.
    for mechanism in figure5.MECHANISMS:
        small = np.mean(times_of(result, mechanism=mechanism, scale=scales[0]))
        large = np.mean(times_of(result, mechanism=mechanism, scale=scales[-1]))
        assert large >= small * 0.5
