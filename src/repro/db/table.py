"""Columnar, numpy-backed tables.

Tables in the reproduction are deliberately simple: a named collection of
equally sized columns.  Columns over attributes with a declared
:class:`~repro.db.domains.AttributeDomain` store *ordinal codes* (``int64``)
rather than raw values, which keeps predicate evaluation, semi-joins and the
Predicate Mechanism's domain arithmetic purely numerical.  Columns without a
domain (e.g. the fact table's measure attributes) store their values
directly.

Where the bytes physically live is a separate concern: every table reads
through a :class:`~repro.db.storage.ColumnStore` (see ``docs/STORAGE.md``).
Eagerly built tables wrap their arrays in a
:class:`~repro.db.storage.MemoryColumnStore`; tables attached from a spilled
on-disk layout are built with :meth:`Table.from_store` over a
:class:`~repro.db.storage.MappedColumnStore`, whose columns materialise lazily
as read-only memmaps and whose chunked reads never materialise at all.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.db.domains import AttributeDomain
from repro.db.storage.base import (
    DEFAULT_CHUNK_ROWS,
    ColumnStore,
    MemoryColumnStore,
    iter_chunks,
)
from repro.exceptions import DomainError, SchemaError

__all__ = ["Column", "StoredColumn", "Table"]


@dataclass
class Column:
    """A single named column.

    Parameters
    ----------
    name:
        Column name.
    values:
        1-D numpy array.  When ``domain`` is given, the array must contain
        ordinal codes in ``[0, domain.size)``.
    domain:
        Optional attribute domain.  Present for dictionary-encoded columns
        (dimension attributes, foreign keys over enumerable key spaces).
    """

    name: str
    values: np.ndarray
    domain: Optional[AttributeDomain] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise SchemaError(f"column {self.name!r} must be one-dimensional")
        if self.domain is not None:
            self.values = self.values.astype(np.int64, copy=False)
            if self.values.size:
                lo = int(self.values.min())
                hi = int(self.values.max())
                if lo < 0 or hi >= self.domain.size:
                    raise DomainError(
                        f"column {self.name!r} contains codes outside its "
                        f"domain of size {self.domain.size} (min={lo}, max={hi})"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_raw(
        cls, name: str, raw_values: Iterable[Any], domain: Optional[AttributeDomain] = None
    ) -> "Column":
        """Build a column from raw values, encoding them if a domain is given."""
        if domain is None:
            return cls(name=name, values=np.asarray(list(raw_values)))
        codes = domain.encode_array(raw_values)
        return cls(name=name, values=codes, domain=domain)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.values.shape[0])

    def __len__(self) -> int:
        return self.num_rows

    def decoded(self) -> list[Any]:
        """Return the raw values (decoding codes when a domain is attached)."""
        if self.domain is None:
            return list(self.values)
        return self.domain.decode_array(self.values)

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing only the rows in ``indices``."""
        return Column(name=self.name, values=self.values[indices], domain=self.domain)

    def mask(self, row_mask: np.ndarray) -> "Column":
        """Return a new column containing only rows where ``row_mask`` is True."""
        return Column(name=self.name, values=self.values[row_mask], domain=self.domain)


class StoredColumn(Column):
    """A column whose values live in a :class:`~repro.db.storage.ColumnStore`.

    ``values`` resolves through the store on access, so a mapped column costs
    nothing until (unless) something actually touches its whole array — the
    chunked kernels go through :meth:`Table.read_chunk` and never do.  The
    code-range validation :class:`Column` performs eagerly is skipped here:
    stored columns come from a spill of an already-validated table, and the
    files are opened read-only, so the invariant cannot have drifted
    (re-validating would defeat lazy attachment by scanning every column).
    """

    def __init__(self, name: str, store: ColumnStore, domain: Optional[AttributeDomain] = None):
        # Deliberately does not call the dataclass __init__/__post_init__:
        # there is no eager array to normalise or validate.
        self.name = name
        self.domain = domain
        self._store = store

    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        return self._store.array(self.name)

    @property
    def num_rows(self) -> int:
        return self._store.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoredColumn({self.name!r}, rows={self.num_rows}, "
            f"store={self._store.kind})"
        )


class Table:
    """A named collection of equally sized columns.

    ``store`` / ``digest`` are provided by :meth:`from_store` when attaching a
    spilled database; eagerly built tables get a
    :class:`~repro.db.storage.MemoryColumnStore` wrapped around their arrays
    so every consumer can use the same two read paths (whole array, or
    :meth:`read_chunk`) regardless of where the bytes live.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        *,
        store: Optional[ColumnStore] = None,
        digest: Optional[str] = None,
    ):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {column.num_rows for column in columns}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has columns of differing lengths: {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names: {names}")
        self.name = name
        self._columns: dict[str, Column] = {column.name: column for column in columns}
        self._num_rows = columns[0].num_rows
        if store is None:
            store = MemoryColumnStore(
                {column.name: column.values for column in columns}
            )
        self._store = store
        self._digest_hint = digest if digest is not None else store.digest()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: Mapping[str, np.ndarray],
        domains: Optional[Mapping[str, AttributeDomain]] = None,
    ) -> "Table":
        """Build a table from a mapping of column name to pre-encoded array."""
        domains = domains or {}
        columns = [
            Column(name=col_name, values=np.asarray(values), domain=domains.get(col_name))
            for col_name, values in arrays.items()
        ]
        return cls(name=name, columns=columns)

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Sequence[Mapping[str, Any]],
        domains: Optional[Mapping[str, AttributeDomain]] = None,
    ) -> "Table":
        """Build a table from row dictionaries (convenience for tests/examples)."""
        if not records:
            raise SchemaError(f"table {name!r} cannot be built from zero records")
        domains = domains or {}
        column_names = list(records[0].keys())
        columns = []
        for col_name in column_names:
            raw = [record[col_name] for record in records]
            columns.append(Column.from_raw(col_name, raw, domain=domains.get(col_name)))
        return cls(name=name, columns=columns)

    @classmethod
    def from_store(
        cls,
        name: str,
        store: ColumnStore,
        domains: Optional[Mapping[str, AttributeDomain]] = None,
        digest: Optional[str] = None,
    ) -> "Table":
        """Build a table reading lazily through an existing column store.

        Used when attaching a spilled database: no column is materialised,
        and ``digest`` (the spill-time content digest from the manifest)
        lets :meth:`content_digest` answer without hashing any bytes.
        """
        domains = domains or {}
        columns = [
            StoredColumn(col_name, store, domain=domains.get(col_name))
            for col_name in store.column_names
        ]
        return cls(name=name, columns=columns, store=store, digest=digest)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    @property
    def store(self) -> ColumnStore:
        """The column store this table's bytes live in."""
        return self._store

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, column_name: str) -> Column:
        try:
            return self._columns[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}; "
                f"available: {self.column_names}"
            ) from None

    def codes(self, column_name: str) -> np.ndarray:
        """Return the raw numpy array backing ``column_name``."""
        return self.column(column_name).values

    def read_chunk(self, column_name: str, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of one column, via the store's chunk path.

        On a memory store this is a view; on a mapped store it is a positioned
        file read with no persistent mapping — the streaming primitive every
        chunked kernel is built on.
        """
        if column_name not in self._columns:
            self.column(column_name)  # raise the table-level SchemaError
        return self._store.read_chunk(column_name, start, stop)

    def domain(self, column_name: str) -> Optional[AttributeDomain]:
        """Return the attribute domain of ``column_name`` (if any)."""
        return self.column(column_name).domain

    # ------------------------------------------------------------------
    # row-level operations
    # ------------------------------------------------------------------
    def filter(self, row_mask: np.ndarray) -> "Table":
        """Return a new table with only the rows where ``row_mask`` is True."""
        row_mask = np.asarray(row_mask, dtype=bool)
        if row_mask.shape[0] != self._num_rows:
            raise SchemaError(
                f"mask of length {row_mask.shape[0]} does not match table "
                f"{self.name!r} with {self._num_rows} rows"
            )
        return Table(self.name, [col.mask(row_mask) for col in self._columns.values()])

    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with the rows at ``indices`` (in that order).

        Indices must lie in ``[0, num_rows)``; anything else raises a
        :class:`~repro.exceptions.SchemaError` naming the table instead of
        surfacing as a bare numpy ``IndexError`` deep inside a kernel.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            lo = int(indices.min())
            hi = int(indices.max())
            if lo < 0 or hi >= self._num_rows:
                raise SchemaError(
                    f"take() indices out of range for table {self.name!r} "
                    f"with {self._num_rows} rows (min={lo}, max={hi})"
                )
        return Table(self.name, [col.take(indices) for col in self._columns.values()])

    def head(self, count: int = 5) -> "Table":
        """Return the first ``count`` rows (for examples and debugging)."""
        count = min(count, self._num_rows)
        return self.take(np.arange(count))

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dictionary of decoded values."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row {index} out of range for table {self.name!r}")
        out: dict[str, Any] = {}
        for column in self._columns.values():
            value = column.values[index]
            if column.domain is not None:
                value = column.domain.decode(int(value))
            out[column.name] = value
        return out

    def to_records(self) -> list[dict[str, Any]]:
        """Materialise the table as a list of row dictionaries (small tables only)."""
        return [self.row(i) for i in range(self._num_rows)]

    # ------------------------------------------------------------------
    # content identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """A hex digest of the table's full content (names, dtypes, bytes).

        Deterministic across processes for identically built tables, which is
        what lets the cache layer (:mod:`repro.db.cache`) derive a
        process-independent namespace from a database.  Computed from scratch
        on every call — tables are treated as immutable everywhere, but the
        cache layer relies on a *mutated* table hashing differently, so the
        digest must never be memoized here.

        The one exception is a table attached from a spilled mapped layout:
        its store carries the digest computed at spill time (over exactly the
        bytes now sitting in the read-only files), and serving that value is
        what keeps attachment scan-free and puts mapped and in-memory twins
        of the same instance in the same cache namespace.

        Column bytes are streamed in fixed-size row chunks —
        ``values[start:stop].tobytes()`` concatenated over chunks is the
        logical byte order whatever the array's layout, so the digest is
        identical to hashing one contiguous copy without ever making one.
        """
        if self._digest_hint is not None:
            return self._digest_hint
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        for column in self._columns.values():
            values = column.values
            digest.update(column.name.encode("utf-8"))
            if column.domain is not None:
                # Codes only pin the selected *positions*; the domain decodes
                # them, so two columns with equal codes over different value
                # lists are different content (GROUP BY labels, predicates).
                digest.update(column.domain.name.encode("utf-8"))
                digest.update(repr(column.domain.values).encode("utf-8"))
            digest.update(str(values.dtype).encode("ascii"))
            if values.dtype == object:
                digest.update(repr(column.decoded()).encode("utf-8"))
            else:
                for start, stop in iter_chunks(values.shape[0], DEFAULT_CHUNK_ROWS):
                    digest.update(values[start:stop].tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._num_rows}, columns={self.column_names})"
