"""Predicate Mechanism for snowflake queries (paper Section 5.3).

Snowflake schemas normalise the dimension tables of a star schema into
hierarchies (the paper's example decomposes ``Date`` into ``Month`` / ``Year``
tables).  A snowflake query is a star-join query whose predicates may sit on
those *outer* dimension tables — e.g. ``Month.month < 7`` instead of
``Date.month < 7``.

PM extends to this setting unchanged: each predicate is still a constraint on
one finite attribute domain and is perturbed with PMA; the executor follows
the snowflake foreign keys (``Date.MK → Month.MK``) when translating the
noisy predicate into a fact-row selection.  This module packages that as a
thin subclass so experiments and users can state their intent explicitly.
"""

from __future__ import annotations

from repro.core.predicate_mechanism import PMAnswer, PredicateMechanism
from repro.db.database import StarDatabase
from repro.db.query import StarJoinQuery
from repro.exceptions import QueryError
from repro.rng import RngLike

__all__ = ["SnowflakePredicateMechanism"]


class SnowflakePredicateMechanism(PredicateMechanism):
    """PM applied to snowflake queries.

    Behaviourally identical to :class:`~repro.core.predicate_mechanism.PredicateMechanism`
    (the perturbation is per-attribute and schema-agnostic); the subclass only
    adds a validation step that the target database actually declares
    snowflake edges for the outer tables the query references, giving a clear
    error instead of a failed join otherwise.
    """

    name = "PM-snowflake"

    def answer(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        executor=None,
        engine=None,
    ) -> PMAnswer:
        self._validate_snowflake_query(database, query)
        return super().answer(database, query, rng=rng, executor=executor, engine=engine)

    @staticmethod
    def _validate_snowflake_query(database: StarDatabase, query: StarJoinQuery) -> None:
        schema = database.schema
        direct = set(schema.foreign_keys)
        for predicate in query.predicates:
            table = predicate.table
            if table == schema.fact.name or table in direct:
                continue
            if table not in schema.dimensions:
                raise QueryError(
                    f"snowflake query {query.name!r} references unknown table {table!r}"
                )
            if not any(edge.parent_table == table for edge in schema.snowflake_edges):
                raise QueryError(
                    f"table {table!r} is not reachable from the fact table: the "
                    "schema declares no snowflake edge with it as parent"
                )
