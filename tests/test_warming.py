"""Tests for the background warm-ahead queue (:mod:`repro.db.cache.warming`).

Contracts under test:

* the queue de-duplicates by ``(database, query)`` fingerprint and drains
  hottest-first with a deterministic tie-break;
* a full queue drops the *coldest* task, never the incoming one;
* the worker replays misses through the ordinary executor, warming the
  active backend, and replays never re-record themselves as misses;
* a dead (garbage-collected) database is skipped, not resurrected;
* the executor hook records cold exact answers only while a queue is
  installed, and never on warm hits;
* the serving tier drains the queue between requests (``--warm-ahead``) and
  reports the counters through ``stats``.
"""

from __future__ import annotations

import gc

import pytest

from repro.datagen.ssb import SSBConfig, SSBGenerator, ssb_schema
from repro.db.cache import LocalCacheBackend, backend_scope
from repro.db.cache.warming import (
    WarmAheadWorker,
    WarmingQueue,
    active_queue,
    queue_scope,
    record_query_miss,
    set_active_queue,
)
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.workloads.ssb_queries import ssb_query


def _tiny_database(seed: int = 7):
    return SSBGenerator(
        SSBConfig(scale_factor=0.05, rows_per_scale_factor=2000, seed=seed)
    ).build()


class TestWarmingQueue:
    def test_record_deduplicates_by_fingerprint(self, ssb_small):
        queue = WarmingQueue()
        query = ssb_query("Qc1", ssb_schema())
        assert queue.record(ssb_small, query)
        assert queue.record(ssb_small, query)
        assert len(queue) == 1
        stats = queue.stats()
        assert stats["recorded"] == 2 and stats["deduplicated"] == 1

    def test_drain_is_hottest_first_with_deterministic_ties(self, ssb_small):
        queue = WarmingQueue()
        cold = ssb_query("Qc1", ssb_schema())
        hot = ssb_query("Qs2", ssb_schema())
        queue.record(ssb_small, cold)
        queue.record(ssb_small, hot)
        queue.record(ssb_small, hot)  # two misses: hotter
        tasks = queue.drain()
        assert [task.query for task in tasks] == [hot, cold]
        assert len(queue) == 0
        # Equal miss counts fall back to first-seen order.
        queue.record(ssb_small, cold)
        queue.record(ssb_small, hot)
        assert [task.query for task in queue.drain()] == [cold, hot]

    def test_full_queue_drops_the_coldest(self, ssb_small):
        queue = WarmingQueue(max_tasks=2)
        q1 = ssb_query("Qc1", ssb_schema())
        q2 = ssb_query("Qs2", ssb_schema())
        q3 = ssb_query("Qc3", ssb_schema())
        queue.record(ssb_small, q1)
        queue.record(ssb_small, q1)  # q1 is hot
        queue.record(ssb_small, q2)  # q2 is the coldest
        queue.record(ssb_small, q3)  # overflow: q2 goes, q3 gets a seat
        assert queue.stats()["dropped"] == 1
        remaining = {task.query for task in queue.drain()}
        assert remaining == {q1, q3}

    def test_bad_max_tasks_rejected(self):
        with pytest.raises(ValueError):
            WarmingQueue(max_tasks=0)


class TestWarmAheadWorker:
    def test_replay_populates_the_cache(self, ssb_small):
        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            engine = ExecutionEngine.for_database(ssb_small)
            query = ssb_query("Qc1", ssb_schema())
            queue = WarmingQueue()
            queue.record(ssb_small, query)
            worker = WarmAheadWorker(queue)
            assert worker.run_once() == 1
            assert worker.replayed == 1
            # The warmed answer serves the next execution without a recompute.
            assert engine.cached_result(query) is not None

    def test_replays_do_not_re_record_themselves(self, ssb_small):
        backend = LocalCacheBackend(64)
        with backend_scope(backend), queue_scope(WarmingQueue()) as queue:
            query = ssb_query("Qc1", ssb_schema())
            queue.record(ssb_small, query)
            WarmAheadWorker(queue).run_once()
            assert len(queue) == 0  # the replay did not enqueue a fresh miss
            assert queue.stats()["recorded"] == 1

    def test_dead_database_is_skipped(self):
        queue = WarmingQueue()
        database = _tiny_database()
        queue.record(database, ssb_query("Qc1", ssb_schema()))
        del database
        gc.collect()
        worker = WarmAheadWorker(queue)
        assert worker.run_once() == 0
        assert worker.skipped_dead == 1

    def test_budget_caps_the_batch(self, ssb_small):
        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            queue = WarmingQueue()
            for name in ("Qc1", "Qs2", "Qc3"):
                queue.record(ssb_small, ssb_query(name, ssb_schema()))
            worker = WarmAheadWorker(queue)
            assert worker.run_once(max_tasks=3, budget_s=0.0) == 0  # no budget
            assert worker.run_once(max_tasks=1) == 1  # bounded batch
            assert len(queue) >= 1  # the rest stays queued

    def test_stats_merge_queue_and_worker_counters(self, ssb_small):
        queue = WarmingQueue()
        queue.record(ssb_small, ssb_query("Qc1", ssb_schema()))
        worker = WarmAheadWorker(queue)
        stats = worker.stats()
        assert stats["pending"] == 1 and stats["replayed"] == 0
        assert "spent_s" in stats and "failed" in stats


class TestExecutorHook:
    def test_cold_execution_records_a_miss(self, ssb_small):
        backend = LocalCacheBackend(64)
        with backend_scope(backend), queue_scope(WarmingQueue()) as queue:
            query = ssb_query("Qc1", ssb_schema())
            QueryExecutor(ssb_small).execute(query)
            assert queue.stats()["recorded"] == 1
            QueryExecutor(ssb_small).execute(query)  # warm: no new miss
            assert queue.stats()["recorded"] == 1

    def test_no_queue_means_no_recording(self, ssb_small):
        assert active_queue() is None
        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            QueryExecutor(ssb_small).execute(ssb_query("Qc1", ssb_schema()))
        assert active_queue() is None

    def test_scope_installs_and_restores(self):
        queue = WarmingQueue()
        with queue_scope(queue):
            assert active_queue() is queue
            inner = WarmingQueue()
            previous = set_active_queue(inner)
            assert previous is queue
            set_active_queue(previous)
        assert active_queue() is None

    def test_record_query_miss_is_noop_without_queue(self, ssb_small):
        record_query_miss(ssb_small, ssb_query("Qc1", ssb_schema()))  # no crash


class TestServingWarmAhead:
    def test_server_drains_the_queue_between_requests(self):
        import json
        import socket

        from repro.serving.planner import QueryPlanner
        from repro.serving.server import QueryServer, ServerThread

        server = QueryServer(QueryPlanner(seed=7), workers=2, warm_ahead=True)
        assert server.warming_queue is not None
        with ServerThread(server) as handle:
            with socket.create_connection(
                ("127.0.0.1", handle.server.port), timeout=10
            ) as sock:
                stream = sock.makefile("rwb")

                def request(message):
                    stream.write((json.dumps(message) + "\n").encode())
                    stream.flush()
                    return json.loads(stream.readline())

                registered = request(
                    {
                        "op": "register",
                        "name": "demo",
                        "kind": "ssb",
                        "scale_factor": 0.05,
                        "rows_per_scale_factor": 2000,
                    }
                )
                assert registered["ok"], registered
                answer = request(
                    {"op": "query", "database": "demo", "mechanism": "PM", "query": "Qc1", "epsilon": 1.0}
                )
                assert answer["ok"], answer
                # The cold exact answer was recorded as a warmable miss; the
                # idle server may have drained it already — either way the
                # counters are visible through stats.
                stats = request({"op": "stats"})
                warming = stats["result"]["warming"]
                assert warming is not None
                assert warming["recorded"] >= 1

    def test_warm_ahead_off_reports_null_stats(self):
        from repro.serving.server import QueryServer

        server = QueryServer(workers=1)
        assert server.warming_queue is None
        assert server._op_stats()["warming"] is None


class TestWorkerStop:
    """Deterministic shutdown: ``stop()`` lets an in-progress replay finish,
    requeues the rest of the drained batch, and raises loudly (the
    ``ServerThread.stop`` contract) if the drain hangs."""

    def test_stop_before_run_leaves_the_queue_intact(self, ssb_small):
        queue = WarmingQueue()
        queue.record(ssb_small, ssb_query("Qc1", ssb_schema()))
        worker = WarmAheadWorker(queue)
        worker.stop()
        worker.stop()  # idempotent
        assert worker.stopped is True
        assert worker.run_once() == 0
        assert len(queue) == 1  # a stopped worker never drains
        assert worker.stats()["stopped"] is True

    def test_stop_mid_drain_finishes_the_replay_and_requeues(
        self, ssb_small, monkeypatch
    ):
        import threading

        import repro.db.executor as executor_module

        started = threading.Event()
        release = threading.Event()
        completed = []

        class _BlockingExecutor:
            def __init__(self, database):
                pass

            def execute(self, query):
                started.set()
                assert release.wait(10), "the test never released the replay"
                completed.append(query)
                return 0.0

        monkeypatch.setattr(executor_module, "QueryExecutor", _BlockingExecutor)
        queue = WarmingQueue()
        for name in ("Qc1", "Qs2", "Qc3"):
            queue.record(ssb_small, ssb_query(name, ssb_schema()))
        worker = WarmAheadWorker(queue)
        runner = threading.Thread(target=worker.run_once)
        runner.start()
        try:
            assert started.wait(10), "the drain never reached the first replay"
            stopper = threading.Thread(target=worker.stop)
            stopper.start()
            # stop() has signalled but must *wait*: the replay is mid-flight.
            assert worker.stopped is True or started.is_set()
            release.set()
            stopper.join(timeout=10)
            assert not stopper.is_alive()
        finally:
            release.set()
            runner.join(timeout=10)
        # The in-progress replay ran to completion; the two never-started
        # tasks went back on the queue, no observed miss lost.
        assert len(completed) == 1
        assert worker.replayed == 1
        assert worker.requeued_on_stop == 2
        assert len(queue) == 2
        assert worker.stats()["requeued_on_stop"] == 2

    def test_hung_drain_raises_instead_of_leaking(self, ssb_small, monkeypatch):
        import threading

        import repro.db.executor as executor_module

        started = threading.Event()
        release = threading.Event()

        class _HungExecutor:
            def __init__(self, database):
                pass

            def execute(self, query):
                started.set()
                release.wait(30)

        monkeypatch.setattr(executor_module, "QueryExecutor", _HungExecutor)
        queue = WarmingQueue()
        queue.record(ssb_small, ssb_query("Qc1", ssb_schema()))
        worker = WarmAheadWorker(queue)
        runner = threading.Thread(target=worker.run_once)
        runner.start()
        try:
            assert started.wait(10)
            with pytest.raises(RuntimeError, match="did not stop"):
                worker.stop(timeout=0.2)
        finally:
            release.set()
            runner.join(timeout=10)

    def test_server_shutdown_stops_the_worker(self):
        from repro.serving.planner import QueryPlanner
        from repro.serving.server import QueryServer, ServerThread

        server = QueryServer(QueryPlanner(seed=7), workers=1, warm_ahead=True)
        assert server.warming_worker is not None
        with ServerThread(server):
            pass  # a clean start/stop cycle
        assert server.warming_worker.stopped is True
