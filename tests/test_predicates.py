"""Unit tests for the predicate AST."""

import numpy as np
import pytest

from repro.db.domains import AttributeDomain
from repro.db.predicates import (
    ConjunctionPredicate,
    PointPredicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
    one_hot_workload,
)
from repro.exceptions import DomainError, QueryError


@pytest.fixture()
def region_domain():
    return AttributeDomain.categorical(
        "region", ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
    )


@pytest.fixture()
def year_domain():
    return AttributeDomain.integer_range("year", 1992, 1998)


class TestPointPredicate:
    def test_evaluate_codes(self, region_domain):
        predicate = PointPredicate("Customer", "region", region_domain, value="ASIA")
        mask = predicate.evaluate_codes(np.array([0, 2, 2, 4]))
        assert list(mask) == [False, True, True, False]

    def test_indicator_vector(self, region_domain):
        predicate = PointPredicate("Customer", "region", region_domain, value="ASIA")
        assert list(predicate.indicator_vector()) == [0, 0, 1, 0, 0]

    def test_selectivity(self, region_domain):
        predicate = PointPredicate("Customer", "region", region_domain, value="ASIA")
        assert predicate.selectivity() == pytest.approx(0.2)

    def test_unknown_value_rejected(self, region_domain):
        with pytest.raises(DomainError):
            PointPredicate("Customer", "region", region_domain, value="MARS")

    def test_domain_size_is_sensitivity(self, region_domain):
        predicate = PointPredicate("Customer", "region", region_domain, value="ASIA")
        assert predicate.domain_size == 5

    def test_describe(self, region_domain):
        predicate = PointPredicate("Customer", "region", region_domain, value="ASIA")
        assert "Customer.region" in predicate.describe()


class TestRangePredicate:
    def test_evaluate_codes(self, year_domain):
        predicate = RangePredicate("Date", "year", year_domain, low=1993, high=1995)
        mask = predicate.evaluate_codes(np.arange(7))
        assert list(mask) == [False, True, True, True, False, False, False]

    def test_reversed_range_rejected(self, year_domain):
        with pytest.raises(DomainError):
            RangePredicate("Date", "year", year_domain, low=1995, high=1993)

    def test_single_value_range(self, year_domain):
        predicate = RangePredicate("Date", "year", year_domain, low=1994, high=1994)
        assert predicate.indicator_vector().sum() == 1

    def test_full_range_selectivity(self, year_domain):
        predicate = RangePredicate("Date", "year", year_domain, low=1992, high=1998)
        assert predicate.selectivity() == pytest.approx(1.0)


class TestSetPredicate:
    def test_evaluate_codes(self, region_domain):
        predicate = SetPredicate(
            "Customer", "region", region_domain, values=("ASIA", "EUROPE")
        )
        mask = predicate.evaluate_codes(np.array([2, 3, 0]))
        assert list(mask) == [True, True, False]

    def test_empty_set_rejected(self, region_domain):
        with pytest.raises(QueryError):
            SetPredicate("Customer", "region", region_domain, values=())

    def test_unknown_member_rejected(self, region_domain):
        with pytest.raises(DomainError):
            SetPredicate("Customer", "region", region_domain, values=("ASIA", "MARS"))

    def test_codes_sorted(self, region_domain):
        predicate = SetPredicate(
            "Customer", "region", region_domain, values=("EUROPE", "AFRICA")
        )
        assert list(predicate.codes) == [0, 3]


class TestTruePredicate:
    def test_selects_everything(self, region_domain):
        predicate = TruePredicate("Customer", "region", region_domain)
        assert predicate.indicator_vector().sum() == region_domain.size
        assert predicate.selectivity() == pytest.approx(1.0)


class TestConjunction:
    def test_grouping_and_sizes(self, region_domain, year_domain):
        conjunction = ConjunctionPredicate.of(
            [
                PointPredicate("Customer", "region", region_domain, value="ASIA"),
                RangePredicate("Date", "year", year_domain, low=1992, high=1997),
                PointPredicate("Supplier", "region", region_domain, value="ASIA"),
            ]
        )
        assert len(conjunction) == 3
        assert conjunction.tables == ["Customer", "Date", "Supplier"]
        assert conjunction.domain_sizes() == [5, 7, 5]
        assert conjunction.domain_product() == 175
        grouped = conjunction.by_table()
        assert set(grouped) == {"Customer", "Date", "Supplier"}

    def test_empty_conjunction(self):
        conjunction = ConjunctionPredicate()
        assert len(conjunction) == 0
        assert conjunction.describe() == "TRUE"
        assert conjunction.domain_product() == 1

    def test_describe_joins_members(self, region_domain):
        conjunction = ConjunctionPredicate.of(
            [PointPredicate("Customer", "region", region_domain, value="ASIA")]
        )
        assert "AND" not in conjunction.describe()


class TestOneHotWorkload:
    def test_stacks_indicators(self, region_domain):
        predicates = [
            PointPredicate("Customer", "region", region_domain, value="ASIA"),
            PointPredicate("Customer", "region", region_domain, value="AFRICA"),
        ]
        matrix = one_hot_workload(predicates, region_domain)
        assert matrix.shape == (2, 5)
        assert matrix[0, 2] == 1.0
        assert matrix[1, 0] == 1.0

    def test_mixed_domains_rejected(self, region_domain, year_domain):
        predicates = [
            PointPredicate("Customer", "region", region_domain, value="ASIA"),
            PointPredicate("Date", "year", year_domain, value=1994),
        ]
        with pytest.raises(QueryError):
            one_hot_workload(predicates, region_domain)

    def test_empty_workload(self, region_domain):
        assert one_hot_workload([], region_domain).shape == (0, 5)
