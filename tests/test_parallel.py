"""Determinism suite for the parallel trial runner and the seeding scheme.

The contracts under test (see docs/RUNNER.md):

* ``jobs=1`` and ``jobs=N`` produce identical experiment rows and CSVs
  (timing columns excluded — wall-clock measurements are not reproducible by
  definition).
* Every cell's random stream is a pure, collision-free function of its label.
* The cached-table skew sampler draws from the same distribution as
  ``Generator.choice`` and is exactly reproducible per seed.
"""

import csv
import dataclasses
import io
from contextlib import contextmanager

import numpy as np
import pytest
from scipy import stats

from repro.datagen.distributions import key_sampler
from repro.db.cache import active_backend
from repro.evaluation.experiments import figure7, figure9, table1, table2
from repro.evaluation.experiments.common import ExperimentConfig, cell_stream
from repro.evaluation.parallel import (
    StarCell,
    TrialScheduler,
    active_scheduler,
    evaluation_session,
    run_star_cell,
    scheduler_for,
)
from repro.rng import ensure_rng, spawn


@pytest.fixture()
def tiny_config():
    return ExperimentConfig(
        epsilons=(0.1, 1.0), trials=2, scale_factor=1.0, rows_per_scale_factor=6000, seed=11
    )


def _strip_times(result):
    """Rows without their wall-clock columns (not reproducible run to run)."""
    return [{k: v for k, v in row.items() if k != "mean_time_s"} for row in result.rows]


class TestScheduler:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            TrialScheduler(0)

    def test_serial_map_preserves_order(self):
        assert TrialScheduler(1).map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        # A picklable module-level callable: abs.
        assert TrialScheduler(2).map(abs, list(range(-20, 0))) == list(range(20, 0, -1))


class TestJobsDeterminism:
    """(a) ``--jobs 1`` and ``--jobs 4`` produce identical experiment CSVs."""

    @pytest.mark.parametrize(
        "driver,kwargs",
        [
            (table1, {"query_names": ("Qc1", "Qs2", "Qg2")}),
            (table2, {"graph_scale": 0.02}),
            (figure7, {"distributions": ("uniform", "gamma"), "scales": (0.5,)}),
        ],
        ids=["table1", "table2", "figure7"],
    )
    def test_rows_identical_across_jobs(self, tiny_config, driver, kwargs):
        serial = driver.run(dataclasses.replace(tiny_config, jobs=1), **kwargs)
        parallel = driver.run(dataclasses.replace(tiny_config, jobs=4), **kwargs)
        assert _strip_times(serial) == _strip_times(parallel)

    def test_csv_identical_across_jobs(self, tiny_config, tmp_path):
        paths = {}
        for jobs in (1, 4):
            result = table1.run(
                dataclasses.replace(tiny_config, jobs=jobs), query_names=("Qc2", "Qs3")
            )
            paths[jobs] = result.to_csv(tmp_path / f"table1_jobs{jobs}.csv")
        rows = {}
        for jobs, path in paths.items():
            with path.open() as handle:
                rows[jobs] = [
                    {k: v for k, v in row.items() if k != "mean_time_s"}
                    for row in csv.DictReader(handle)
                ]
        assert rows[1] == rows[4]


class TestCellStreams:
    """(b) per-cell streams are collision-free across all experiment cells."""

    def test_streams_unique_across_table1_and_table2(self, tiny_config):
        config = dataclasses.replace(tiny_config, epsilons=(0.1, 0.2, 0.5, 0.8, 1.0))
        labels = [cell.stream for cell in table1.cells(config)]
        labels += [cell.stream for cell in table2.cells(config)]
        assert len(labels) == len(set(labels))
        keys = {cell_stream(config.seed, *label).spawn_key for label in labels}
        assert len(keys) == len(labels)
        # The streams themselves disagree from the very first draw.
        first_draws = {
            ensure_rng(cell_stream(config.seed, *label)).integers(0, 2**63) for label in labels
        }
        assert len(first_draws) == len(labels)

    def test_stream_is_pure_function_of_label(self):
        a = spawn(cell_stream(7, "table1", 0.5, "PM", "Qc1"), 3)
        b = spawn(cell_stream(7, "table1", 0.5, "PM", "Qc1"), 3)
        for rng_a, rng_b in zip(a, b):
            assert rng_a.integers(0, 2**63) == rng_b.integers(0, 2**63)

    def test_stream_depends_on_every_label_part(self):
        base = cell_stream(7, "table1", 0.5, "PM", "Qc1")
        assert cell_stream(8, "table1", 0.5, "PM", "Qc1").entropy != base.entropy
        for variant in (
            cell_stream(7, "table2", 0.5, "PM", "Qc1"),
            cell_stream(7, "table1", 0.8, "PM", "Qc1"),
            cell_stream(7, "table1", 0.5, "R2T", "Qc1"),
            cell_stream(7, "table1", 0.5, "PM", "Qc2"),
        ):
            assert variant.spawn_key != base.spawn_key

    def test_star_cell_reproducible_in_isolation(self, tiny_config):
        """A cell's result does not depend on which other cells ran before."""
        from repro.evaluation.experiments.common import build_ssb_database
        from repro.workloads.ssb_queries import ssb_query

        cell = StarCell(
            mechanism="PM",
            epsilon=0.5,
            query_builder=ssb_query,
            query_args=("Qc2",),
            database_builder=build_ssb_database,
            database_args=(tiny_config,),
            stream=("isolated", 0.5, "PM", "Qc2"),
        )
        first = run_star_cell(tiny_config, cell)
        second = run_star_cell(tiny_config, cell)
        assert first.relative_errors == second.relative_errors


def _canonical_csv(result, tmp_path, label: str) -> str:
    """The experiment CSV as canonical text, wall-clock columns dropped
    (timings are not reproducible by definition; everything else must be
    byte-identical across backends and job counts)."""
    path = result.to_csv(tmp_path / f"{label}.csv")
    with path.open(newline="") as handle:
        rows = [
            {k: v for k, v in row.items() if k != "mean_time_s"}
            for row in csv.DictReader(handle)
        ]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


class TestBackendParity:
    """Experiment CSVs are byte-identical across cache backends and job
    counts: ``local`` serial is the reference, every (backend, jobs)
    combination — including the out-of-process cache server — must
    reproduce it exactly."""

    QUERIES = ("Qc1", "Qs2", "Qg2")

    def _table1_csv(self, config, tmp_path, label):
        with evaluation_session(config):
            result = table1.run(config, query_names=self.QUERIES)
        return _canonical_csv(result, tmp_path, label)

    @contextmanager
    def _configured(self, tiny_config, backend, jobs):
        """A config for (backend, jobs); 'remote' gets a live cache server."""
        if backend == "remote":
            from repro.db.cache.server import CacheServerThread

            with CacheServerThread(max_entries=4096) as handle:
                yield dataclasses.replace(
                    tiny_config,
                    jobs=jobs,
                    cache_backend="remote",
                    cache_url=f"127.0.0.1:{handle.server.port}",
                )
        else:
            yield dataclasses.replace(tiny_config, jobs=jobs, cache_backend=backend)

    @pytest.mark.parametrize("backend", ["local", "shared", "remote"])
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_csv_identical_to_serial_local_run(self, tiny_config, tmp_path, backend, jobs):
        reference = self._table1_csv(
            dataclasses.replace(tiny_config, jobs=1, cache_backend="local"),
            tmp_path,
            "reference",
        )
        with self._configured(tiny_config, backend, jobs) as config:
            variant = self._table1_csv(config, tmp_path, f"{backend}-j{jobs}")
        assert variant == reference

    def test_shared_backend_scores_cross_worker_hits(self, tiny_config):
        config = dataclasses.replace(tiny_config, jobs=4, cache_backend="shared")
        with evaluation_session(config):
            table1.run(config, query_names=self.QUERIES)
            stats = active_backend().stats()
        assert stats.shared_puts > 0
        assert stats.shared_hits > 0  # some worker was served by another's work

    def test_remote_backend_scores_cross_process_hits(self, tiny_config):
        """Forked workers reconnect to the cache server and exchange
        artefacts through it, exactly like the shared tier."""
        with self._configured(tiny_config, "remote", jobs=4) as config:
            with evaluation_session(config):
                table1.run(config, query_names=self.QUERIES)
                stats = active_backend().stats()
        assert stats.shared_puts > 0
        assert stats.shared_hits > 0  # some process was served by another's work


class TestRunWideScheduler:
    """One evaluation session == one worker pool for the whole run."""

    def test_session_scheduler_is_shared_by_drivers(self, tiny_config):
        assert active_scheduler() is None
        with evaluation_session(tiny_config) as scheduler:
            assert active_scheduler() is scheduler
            assert scheduler_for(tiny_config) is scheduler
        assert active_scheduler() is None
        transient = scheduler_for(tiny_config)
        assert transient is not scheduler and not transient.persistent

    def test_single_pool_serves_multiple_experiments(self, tiny_config):
        config = dataclasses.replace(tiny_config, jobs=2)
        before = TrialScheduler.pools_created
        with evaluation_session(config):
            table1.run(config, query_names=("Qc1", "Qc2"))
            figure9.run(config)
        assert TrialScheduler.pools_created - before == 1

    def test_serial_session_creates_no_pool(self, tiny_config):
        before = TrialScheduler.pools_created
        with evaluation_session(dataclasses.replace(tiny_config, jobs=1)):
            table1.run(tiny_config, query_names=("Qc1",))
        assert TrialScheduler.pools_created == before

    def test_transient_scheduler_still_pools_per_map(self):
        before = TrialScheduler.pools_created
        scheduler = TrialScheduler(2)
        assert scheduler.map(abs, [-1, -2, -3]) == [1, 2, 3]
        assert scheduler.map(abs, [-4, -5, -6]) == [4, 5, 6]
        assert TrialScheduler.pools_created - before == 2

    def test_persistent_scheduler_reuses_one_pool(self):
        before = TrialScheduler.pools_created
        with TrialScheduler(2, persistent=True) as scheduler:
            assert scheduler.map(abs, [-1, -2, -3]) == [1, 2, 3]
            assert scheduler.map(abs, [-4, -5, -6]) == [4, 5, 6]
        assert TrialScheduler.pools_created - before == 1

    def test_nested_sessions_restore_outer(self, tiny_config):
        with evaluation_session(tiny_config) as outer:
            inner_config = dataclasses.replace(tiny_config, cache_backend="shared")
            with evaluation_session(inner_config) as inner:
                assert active_scheduler() is inner
                assert active_backend().name == "shared"
            assert active_scheduler() is outer
            assert active_backend().name == "local"


class TestCachedSkewSampler:
    """(c) the cached-table sampler matches ``Generator.choice`` and is
    exactly reproducible per seed."""

    SIZE = 400
    COUNT = 40_000

    @pytest.mark.parametrize("name", ["exponential", "gamma", "zipf", "gaussian_mixture"])
    def test_sample_matches_choice_distribution(self, name):
        sampler = key_sampler(name)
        probabilities = sampler.probabilities(self.SIZE)
        ours = sampler.sample(self.SIZE, self.COUNT, rng=101)
        reference = ensure_rng(202).choice(self.SIZE, size=self.COUNT, p=probabilities)
        statistic, p_value = stats.ks_2samp(ours, reference)
        assert p_value > 0.01, f"{name}: KS statistic {statistic} (p={p_value})"

    @pytest.mark.parametrize("name", ["exponential", "gamma", "zipf"])
    def test_sample_via_cdf_matches_sample_distribution(self, name):
        sampler = key_sampler(name)
        alias_draw = sampler.sample(self.SIZE, self.COUNT, rng=303)
        cdf_draw = sampler.sample_via_cdf(self.SIZE, self.COUNT, rng=404)
        statistic, p_value = stats.ks_2samp(alias_draw, cdf_draw)
        assert p_value > 0.01, f"{name}: KS statistic {statistic} (p={p_value})"

    def test_exact_reproducibility_per_seed(self):
        sampler = key_sampler("gamma")
        for draw in (sampler.sample, sampler.sample_via_cdf):
            first = draw(self.SIZE, 1000, rng=55)
            second = draw(self.SIZE, 1000, rng=55)
            np.testing.assert_array_equal(first, second)
        assert not np.array_equal(
            sampler.sample(self.SIZE, 1000, rng=55), sampler.sample(self.SIZE, 1000, rng=56)
        )

    def test_probability_vector_built_once_per_size(self):
        """Regression: ``probabilities`` used to rebuild and renormalise the
        vector on every ``sample`` call (quadratic-ish skew datagen)."""
        from repro.datagen.distributions import KeySampler

        calls = []

        def probability_fn(size):
            calls.append(size)
            return np.arange(1, size + 1, dtype=np.float64)

        sampler = KeySampler("counting", probability_fn)
        for _ in range(5):
            sampler.sample(64, 100, rng=1)
            sampler.probabilities(64)
            sampler.cdf(64)
        assert calls == [64]
        sampler.sample(128, 100, rng=1)
        assert calls == [64, 128]

    def test_cdf_matches_probabilities(self):
        sampler = key_sampler("zipf")
        cdf = sampler.cdf(50)
        np.testing.assert_allclose(np.diff(cdf), sampler.probabilities(50)[1:], atol=1e-12)
        assert cdf[-1] == 1.0


class TestGracefulShutdown:
    """Interrupts terminate the worker pool instead of stranding it."""

    def test_terminate_without_pool_is_a_noop(self):
        TrialScheduler(2, persistent=True).terminate()

    def test_terminate_leaves_no_orphan_workers(self):
        scheduler = TrialScheduler(2, persistent=True)
        assert scheduler.map(abs, list(range(-8, 0))) == list(range(8, 0, -1))
        processes = list(scheduler._pool._processes.values())
        assert processes and all(p.is_alive() for p in processes)
        scheduler.terminate()
        assert all(not p.is_alive() for p in processes)
        # The scheduler stays usable: the next map forks a fresh pool.
        assert scheduler.map(abs, [-3, -1]) == [3, 1]
        scheduler.close()

    def test_interrupted_session_terminates_workers(self, tiny_config):
        from repro.db.cache import active_backend

        config = ExperimentConfig(
            epsilons=tiny_config.epsilons,
            trials=tiny_config.trials,
            rows_per_scale_factor=tiny_config.rows_per_scale_factor,
            seed=tiny_config.seed,
            jobs=2,
        )
        before = active_backend()
        with pytest.raises(KeyboardInterrupt):
            with evaluation_session(config) as scheduler:
                scheduler.map(abs, list(range(-8, 0)))
                processes = list(scheduler._pool._processes.values())
                assert all(p.is_alive() for p in processes)
                raise KeyboardInterrupt
        assert all(not p.is_alive() for p in processes)
        # Teardown still restored the previously active backend.
        assert active_backend() is before
        assert active_scheduler() is None
