"""Consistent-hash sharding of the cache-server keyspace.

:class:`ShardedCacheBackend` composes N :class:`RemoteCacheBackend`\\ s — one
per ``repro.db.cache.server`` instance — behind the ordinary
:class:`~repro.db.cache.backend.CacheBackend` protocol, so everything above
the cache layer (engine, runner, serving) is oblivious to how many servers
exist.  Placement comes from the :class:`~repro.db.cache.ring.HashRing` keyed
on the canonical ``encode_key(namespace, region, key)`` bytes — the
namespaced fingerprint — so entries spread at per-artefact granularity (a
whole database's worth of artefacts is *not* pinned to one shard) and every
client with the same shard list computes the identical placement with no
coordination.

Replication and the failover ladder
-----------------------------------

With ``replicas > 1`` each write also lands on the next distinct shard(s)
clockwise on the ring.  ``replicate_namespaces`` restricts that to the hot
namespaces worth the extra bytes (``None`` replicates everything).  Reads go
to the primary; **only when the primary's remote tier is out of service**
(its circuit breaker open or probing) does the read fail over to the
replica.  Each composed backend keeps its own L1 + breaker + retry/backoff
machinery, so the full ladder for one entry is::

    primary L1  →  primary server  →  (primary breaker open?)  replica
    server  →  recompute locally (pure function of the key — byte-identical,
    just slower)

A dead shard therefore costs the keys it owned (minus replicated ones), never
correctness — the same contract the single-server backend already honours.

Budget note: the *analyst ledger* is *not* behind this class.  Analysts are
routed to a home serving shard by the fleet router using the same hash ring
(see ``repro.serving.fleet``); this backend only shards content-addressed
artefacts, which are pure values and safe to place anywhere.
"""

from __future__ import annotations

from typing import Any, Collection, Hashable, List, Optional, Sequence

from repro.db.cache.backend import (
    DEFAULT_EVICTION_POLICY,
    SHARED_REGIONS,
    CacheStats,
    telemetry_from_stats,
)
from repro.db.cache.remote import RemoteCacheBackend, parse_cache_url
from repro.db.cache.ring import HashRing
from repro.db.cache.wire import encode_key
from repro.obs.metrics import active_registry

__all__ = ["ShardedCacheBackend", "parse_shard_urls"]


def parse_shard_urls(url: str) -> List[str]:
    """A comma-separated ``host:port,host:port`` list → normalised labels.

    Single-element lists are fine (they mean "no sharding"); every element
    must parse as a cache url, and duplicates are rejected — a repeated
    shard would silently halve the keyspace it owns.
    """
    labels: List[str] = []
    for part in str(url).split(","):
        part = part.strip()
        if not part:
            continue
        host, port = parse_cache_url(part)
        labels.append(f"{host}:{port}")
    if not labels:
        raise ValueError(f"no cache shards in url list {url!r}")
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate cache shards in url list {url!r}")
    return labels


class ShardedCacheBackend:
    """N remote cache backends behind one consistent-hash ring."""

    name = "sharded"

    def __init__(
        self,
        urls: Optional[Sequence[str]] = None,
        shards: Optional[Sequence[RemoteCacheBackend]] = None,
        replicas: int = 1,
        replicate_namespaces: Optional[Collection[str]] = None,
        vnodes: int = 64,
        max_entries: int = 192,
        remote_regions: frozenset = SHARED_REGIONS,
        policy: str = DEFAULT_EVICTION_POLICY,
        max_bytes: Optional[int] = None,
        **remote_kwargs: Any,
    ):
        """Compose cache shards behind one ring.

        Pass ``urls`` (each ``host:port``) to build one
        :class:`RemoteCacheBackend` per shard with the shared configuration
        (``max_entries``/``policy``/``max_bytes`` size the per-shard L1
        exactly as a single remote backend would be sized; extra
        ``remote_kwargs`` — timeouts, retry and breaker knobs — are handed
        through), or ``shards`` to supply pre-built backends (tests route
        them through chaos proxies this way).  ``replicas`` is clamped to
        the shard count; ``replicate_namespaces=None`` replicates every
        namespace when ``replicas > 1``.
        """
        if (urls is None) == (shards is None):
            raise ValueError("pass exactly one of urls= or shards=")
        if shards is not None:
            self.shards: List[RemoteCacheBackend] = list(shards)
            labels = [f"{shard.host}:{shard.port}" for shard in self.shards]
        else:
            labels = []
            for url in urls:
                labels.extend(parse_shard_urls(url))
            self.shards = [
                RemoteCacheBackend(
                    url=label,
                    max_entries=max_entries,
                    remote_regions=remote_regions,
                    policy=policy,
                    max_bytes=max_bytes,
                    **remote_kwargs,
                )
                for label in labels
            ]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate cache shards: {labels!r}")
        self.labels = tuple(labels)
        self._by_label = dict(zip(self.labels, self.shards))
        self.ring = HashRing(self.labels, vnodes=vnodes)
        self.replicas = max(1, min(int(replicas), len(self.shards)))
        self.replicate_namespaces = (
            frozenset(str(item) for item in replicate_namespaces)
            if replicate_namespaces is not None
            else None
        )
        self.remote_regions = frozenset(remote_regions)
        self.max_entries = self.shards[0].max_entries
        self.policy = self.shards[0].policy
        self._failover_hits = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def _copies(self, namespace: str) -> int:
        if self.replicas == 1:
            return 1
        if self.replicate_namespaces is None or namespace in self.replicate_namespaces:
            return self.replicas
        return 1

    def _placement(self, namespace: str, region: str, key: Hashable) -> List[str]:
        """Ordered shard labels for one address: primary first, replicas after."""
        return self.ring.preference(
            encode_key(namespace, region, key), self._copies(namespace)
        )

    # ------------------------------------------------------------------
    # the CacheBackend protocol
    # ------------------------------------------------------------------
    def get(self, namespace: str, region: str, key: Hashable) -> Any:
        placement = self._placement(namespace, region, key)
        primary = self._by_label[placement[0]]
        value = primary.get(namespace, region, key)
        if value is not None:
            return value
        if len(placement) > 1 and primary.degraded:
            # Failover rung: the primary's remote tier is out of service
            # (breaker open/probing), so ask the replica(s) before falling
            # back to a recompute.  A mere miss on a healthy primary does
            # NOT consult replicas — writes land on both, so a healthy miss
            # means the entry genuinely is not cached.
            for label in placement[1:]:
                value = self._by_label[label].get(namespace, region, key)
                if value is not None:
                    self._failover_hits += 1
                    active_registry().counter("cache_shard_failover_hits_total").inc()
                    return value
        return None

    def put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        for label in self._placement(namespace, region, key):
            self._by_label[label].put(namespace, region, key, value, cost)

    def clear(self, namespace: Optional[str] = None) -> None:
        for shard in self.shards:
            shard.clear(namespace)
        if namespace is None:
            self._failover_hits = 0

    def release(self, namespace: str) -> None:
        for shard in self.shards:
            shard.release(namespace)

    def stats(self) -> CacheStats:
        total = CacheStats()
        for shard in self.shards:
            total = total + shard.stats()
        return total

    def reset_stats(self) -> None:
        self._failover_hits = 0
        for shard in self.shards:
            shard.reset_stats()

    def entry_count(self, namespace: Optional[str] = None) -> int:
        # Replicated entries are counted once per holding shard — this is a
        # capacity gauge over real storage, not a distinct-key count.
        return sum(shard.entry_count(namespace) for shard in self.shards)

    # ------------------------------------------------------------------
    # observability beyond the protocol
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Local-only is the *last* rung: the composite is degraded only
        when every shard's remote tier is out of service."""
        return all(shard.degraded for shard in self.shards)

    @property
    def failover_hits(self) -> int:
        return self._failover_hits

    def remote_io(self) -> dict:
        totals = {"bytes_sent": 0, "bytes_received": 0}
        for shard in self.shards:
            io = shard.remote_io()
            totals["bytes_sent"] += io["bytes_sent"]
            totals["bytes_received"] += io["bytes_received"]
        return totals

    def telemetry_snapshot(self) -> dict:
        """Fleet-wide counters in the unified schema, with one labelled
        per-shard snapshot each under ``subsystem.shards`` (the per-shard
        subsystem labels the router's aggregated ``telemetry`` op surfaces).
        """
        per_shard = []
        for label, shard in zip(self.labels, self.shards):
            snapshot = shard.telemetry_snapshot()
            subsystem = dict(snapshot.get("subsystem", {}))
            subsystem["shard"] = label
            snapshot["subsystem"] = subsystem
            per_shard.append(snapshot)
        merged = telemetry_from_stats(
            self.stats(),
            self.name,
            gauges={"shards": len(self.shards)},
            subsystem_extra={
                "policy": self.policy,
                "replicas": self.replicas,
                "degraded": self.degraded,
                "ring_vnodes": self.ring.vnodes,
                "shards": [snap["subsystem"] for snap in per_shard],
            },
        )
        # The CacheStats-derived counters are already fleet sums (stats()
        # adds the shards); only the remote-specific extras need summing
        # here.  Ratios (hit_rate) are never summed.
        extra_counters = (
            "bytes_sent",
            "bytes_received",
            "put_short_circuits",
            "put_bytes_saved",
            "breaker_trips",
        )
        for snapshot in per_shard:
            for key in extra_counters:
                amount = snapshot.get("counters", {}).get(key, 0)
                merged["counters"][key] = merged["counters"].get(key, 0) + amount
            for key in ("entries", "bytes"):
                amount = snapshot.get("gauges", {}).get(key, 0)
                merged["gauges"][key] = merged["gauges"].get(key, 0) + amount
        merged["counters"]["failover_hits"] = self._failover_hits
        return merged

    def breaker_stats(self) -> dict:
        """Per-shard breaker state plus fleet rollups (trips, open shards)."""
        per_shard = {
            label: shard.breaker_stats()
            for label, shard in zip(self.labels, self.shards)
        }
        open_shards = [
            label
            for label, stats in per_shard.items()
            if stats.get("state") != "closed"
        ]
        return {
            "state": "closed" if not open_shards else "degraded",
            "trips": sum(int(s.get("trips", 0)) for s in per_shard.values()),
            "open_shards": open_shards,
            "failover_hits": self._failover_hits,
            "shards": per_shard,
        }

    def miss_log(self, namespace: Optional[str] = None, clear: bool = False) -> Optional[dict]:
        """The union of every reachable shard's miss log (``None`` only when
        no shard answered)."""
        merged: Optional[dict] = None
        for shard in self.shards:
            log = shard.miss_log(namespace, clear=clear)
            if log is None:
                continue
            if merged is None:
                merged = {"recorded": 0, "counts": {}, "recent": []}
            merged["recorded"] += int(log.get("recorded", 0))
            for space, count in (log.get("counts") or {}).items():
                merged["counts"][space] = merged["counts"].get(space, 0) + count
            merged["recent"].extend(log.get("recent") or [])
        return merged

    def server_stats(self) -> Optional[dict]:
        """Per-shard server counters keyed by shard label (unreachable
        shards map to ``None``)."""
        stats = {
            label: shard.server_stats()
            for label, shard in zip(self.labels, self.shards)
        }
        return stats if any(value is not None for value in stats.values()) else None

    # ------------------------------------------------------------------
    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedCacheBackend({len(self.shards)} shards, "
            f"replicas={self.replicas}, {self.stats().summary()})"
        )
