"""Benchmark: regenerate Figure 11 (error under Gaussian-mixture skew).

Expected shape (paper Figure 11): the more separated / unbalanced the mixture
components, the larger PM's error, and the counting query Qc3 suffers more
from the skew than the sum query Qs3; PM still stays below LS everywhere.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure11


def test_figure11(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure11.run(bench_config), rounds=1, iterations=1)
    record_result(result, "figure11")

    mixture_names = [name for name, _ in figure11.MIXTURES]
    pm_count = [
        np.mean(errors_of(result, mechanism="PM", query="Qc3", mixture=name))
        for name in mixture_names
    ]
    # Stronger skew does not make PM more accurate on counts.
    assert pm_count[-1] >= pm_count[0] - 5.0

    pm_overall = np.mean(
        [e for name in mixture_names for e in errors_of(result, mechanism="PM", query="Qc3", mixture=name)]
    )
    ls_overall = np.mean(
        [e for name in mixture_names for e in errors_of(result, mechanism="LS", query="Qc3", mixture=name)]
    )
    assert pm_overall < ls_overall
