"""Plain-text and CSV reporting of experiment results.

Every experiment in :mod:`repro.evaluation.experiments` returns an
:class:`ExperimentResult` — a list of row dictionaries plus a title — which
can be rendered as an aligned text table (the same rows/series the paper's
tables and figures report) or written to CSV for plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    if value is None:
        return "n/a"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Rows produced by one experiment (one table or figure of the paper)."""

    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(dict(values))

    @property
    def columns(self) -> list[str]:
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def column(self, name: str) -> list[Any]:
        """All values of one column (missing entries become ``None``)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> "ExperimentResult":
        """Rows matching all key=value criteria, as a new result."""
        matched = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ExperimentResult(title=self.title, rows=matched, notes=self.notes)

    def to_text(self) -> str:
        """Render the result as a titled text table."""
        columns = self.columns
        table = format_table(columns, [[row.get(c) for c in columns] for row in self.rows])
        parts = [self.title, "=" * len(self.title), table]
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        return "\n".join(parts)

    def to_csv(self, path: str | Path) -> Path:
        """Write the rows to a CSV file and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = self.columns
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({column: row.get(column) for column in columns})
        return path

    def __len__(self) -> int:
        return len(self.rows)
