"""Evaluation harness: metrics, experiment runner and per-figure experiments.

The :mod:`repro.evaluation.experiments` package contains one module per table
or figure of the paper's evaluation section; each exposes a ``run`` function
returning an :class:`~repro.evaluation.reporting.ExperimentResult` whose rows
mirror the paper's layout.  ``benchmarks/`` wires every experiment into
pytest-benchmark, and ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.evaluation.metrics import (
    grouped_relative_error,
    relative_error,
    workload_relative_error,
)
from repro.evaluation.runner import (
    EvaluationResult,
    evaluate_kstar_mechanism,
    evaluate_mechanism,
    make_kstar_mechanism,
    make_star_mechanism,
)
from repro.evaluation.reporting import ExperimentResult, format_table

__all__ = [
    "relative_error",
    "grouped_relative_error",
    "workload_relative_error",
    "EvaluationResult",
    "evaluate_mechanism",
    "evaluate_kstar_mechanism",
    "make_star_mechanism",
    "make_kstar_mechanism",
    "ExperimentResult",
    "format_table",
]
