"""Consistent-hash ring shared by the sharded cache tier and the fleet router.

Two placement problems in the sharded serving fleet need the same answer:

* the :class:`~repro.db.cache.sharded.ShardedCacheBackend` must send each
  ``(namespace, region, key)`` address to a stable cache shard, and
* the fleet router must pin each analyst to one *home* serving shard so the
  per-analyst ``BudgetLedger`` admit/refuse decision stays atomic (a single
  sqlite journal per shard, exactly as in the single-server deployment).

Both use this ring.  It is the textbook construction: every node is hashed
onto a 64-bit circle at ``vnodes`` points (virtual nodes smooth out the
placement variance of a handful of physical shards), a key is hashed onto the
same circle, and it belongs to the first node clockwise from its position.
``preference(key, n)`` keeps walking clockwise to produce the ordered failover
list — the first entry is the primary, subsequent distinct nodes host
replicas.

Hashes are sha256 (stable across processes, platforms and Python releases —
``hash()`` is salted per-process and would desynchronise router and clients),
so every participant that knows the shard list derives the identical
placement with no coordination.  Adding or removing one node moves only the
keys adjacent to its points: roughly ``1/n`` of the keyspace, not all of it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, List, Sequence, Tuple

__all__ = ["HashRing"]


def _position(data: bytes) -> int:
    """A point on the 64-bit circle."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent placement of keys onto a fixed set of named nodes."""

    def __init__(self, nodes: Sequence[str], vnodes: int = 64):
        ordered = list(dict.fromkeys(str(node) for node in nodes))
        if not ordered:
            raise ValueError("HashRing needs at least one node")
        if len(ordered) != len(nodes):
            raise ValueError(f"duplicate ring nodes in {list(nodes)!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes: Tuple[str, ...] = tuple(ordered)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(self.vnodes):
                points.append((_position(f"{node}#{replica}".encode("utf-8")), node))
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    @staticmethod
    def key_position(key: Hashable) -> int:
        data = key if isinstance(key, bytes) else str(key).encode("utf-8")
        return _position(data)

    def node(self, key: Hashable) -> str:
        """The primary owner of ``key``."""
        return self.preference(key, 1)[0]

    def preference(self, key: Hashable, count: int) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        ``preference(k, n)[0]`` is the primary; the rest are the replica /
        failover order.  ``count`` is clamped to the number of nodes.
        """
        wanted = max(1, min(int(count), len(self.nodes)))
        start = bisect.bisect_right(self._positions, self.key_position(key))
        chosen: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == wanted:
                    break
        return chosen

    def spread(self, keys: Sequence[Hashable]) -> dict:
        """Histogram of primary assignments — handy for tests and telemetry."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(nodes={list(self.nodes)!r}, vnodes={self.vnodes})"
