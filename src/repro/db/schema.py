"""Schema metadata for star (and snowflake) schemas.

A star schema (paper Definition 1.1) has a single fact table ``R0`` whose
foreign keys reference the primary keys of ``n`` dimension tables
``R1 .. Rn``.  The schema objects here carry exactly the metadata the DP
mechanisms need:

* which table owns which attribute and what its domain is (the Predicate
  Mechanism calibrates noise to ``|dom(a_i)|``);
* the foreign-key constraints (the neighbouring-instance definitions of
  Section 3.2 and the fan-out based sensitivities of the baselines both hinge
  on them);
* optional snowflake edges between dimension tables (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.db.domains import AttributeDomain
from repro.exceptions import SchemaError

__all__ = ["TableSchema", "ForeignKey", "StarSchema"]


@dataclass(frozen=True)
class TableSchema:
    """Schema of a single table.

    Parameters
    ----------
    name:
        Table name.
    key:
        Primary-key column name, or ``None`` for tables without a surrogate
        key (e.g. a graph edge table).
    attributes:
        Mapping from attribute name to its domain for every dictionary-encoded
        attribute.  Measure attributes (plain numeric columns) are listed in
        ``measures`` instead.
    measures:
        Names of raw numeric columns (no domain), typically the fact table's
        measure attributes such as ``quantity`` or ``revenue``.
    """

    name: str
    key: Optional[str]
    attributes: Mapping[str, AttributeDomain] = field(default_factory=dict)
    measures: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        overlap = set(self.attributes) & set(self.measures)
        if overlap:
            raise SchemaError(
                f"table {self.name!r}: attributes and measures overlap: {sorted(overlap)}"
            )

    @property
    def column_names(self) -> list[str]:
        names: list[str] = []
        if self.key is not None:
            names.append(self.key)
        names.extend(name for name in self.attributes if name != self.key)
        names.extend(self.measures)
        return names

    def domain_of(self, attribute: str) -> AttributeDomain:
        try:
            return self.attributes[attribute]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no dictionary-encoded attribute "
                f"{attribute!r}; available: {sorted(self.attributes)}"
            ) from None


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint from the fact table to one dimension table.

    ``fact_column`` in the fact table references ``dimension_key`` (the
    primary key) of ``dimension_table``.
    """

    fact_column: str
    dimension_table: str
    dimension_key: str


@dataclass(frozen=True)
class SnowflakeEdge:
    """A foreign-key edge between two dimension tables (snowflake schemas).

    ``child_table.child_column`` references ``parent_table.parent_key``;
    e.g. ``Date.MK -> Month.MK`` in the paper's snowflake example.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_key: str


class StarSchema:
    """A star (or snowflake) schema: one fact table plus dimension tables."""

    def __init__(
        self,
        fact: TableSchema,
        dimensions: Iterable[TableSchema],
        foreign_keys: Iterable[ForeignKey],
        snowflake_edges: Iterable[SnowflakeEdge] = (),
    ):
        self.fact = fact
        self.dimensions: dict[str, TableSchema] = {}
        for dimension in dimensions:
            if dimension.name in self.dimensions or dimension.name == fact.name:
                raise SchemaError(f"duplicate table name {dimension.name!r} in schema")
            if dimension.key is None:
                raise SchemaError(
                    f"dimension table {dimension.name!r} must declare a primary key"
                )
            self.dimensions[dimension.name] = dimension

        self.foreign_keys: dict[str, ForeignKey] = {}
        for fk in foreign_keys:
            if fk.dimension_table not in self.dimensions:
                raise SchemaError(
                    f"foreign key references unknown dimension table "
                    f"{fk.dimension_table!r}"
                )
            expected_key = self.dimensions[fk.dimension_table].key
            if fk.dimension_key != expected_key:
                raise SchemaError(
                    f"foreign key to {fk.dimension_table!r} must reference its "
                    f"primary key {expected_key!r}, got {fk.dimension_key!r}"
                )
            self.foreign_keys[fk.dimension_table] = fk

        self.snowflake_edges: tuple[SnowflakeEdge, ...] = tuple(snowflake_edges)
        for edge in self.snowflake_edges:
            if edge.child_table not in self.dimensions or edge.parent_table not in self.dimensions:
                raise SchemaError(
                    f"snowflake edge {edge} references an unknown dimension table"
                )

        # Every dimension must be reachable from the fact table, either through
        # a direct foreign key or (snowflake schemas) as the parent of another
        # dimension.
        snowflake_parents = {edge.parent_table for edge in self.snowflake_edges}
        missing = set(self.dimensions) - set(self.foreign_keys) - snowflake_parents
        if missing:
            raise SchemaError(
                f"dimension tables not reachable from the fact table (no foreign "
                f"key and not a snowflake parent): {sorted(missing)}"
            )

    # ------------------------------------------------------------------
    @property
    def dimension_names(self) -> list[str]:
        return list(self.dimensions)

    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    @property
    def is_snowflake(self) -> bool:
        return bool(self.snowflake_edges)

    def foreign_key_for(self, dimension_name: str) -> ForeignKey:
        try:
            return self.foreign_keys[dimension_name]
        except KeyError:
            raise SchemaError(
                f"schema has no dimension table {dimension_name!r}; "
                f"available: {self.dimension_names}"
            ) from None

    def table_schema(self, table_name: str) -> TableSchema:
        if table_name == self.fact.name:
            return self.fact
        if table_name in self.dimensions:
            return self.dimensions[table_name]
        raise SchemaError(f"schema has no table named {table_name!r}")

    def locate_attribute(self, attribute: str) -> tuple[str, AttributeDomain]:
        """Return ``(table_name, domain)`` of the unique table holding ``attribute``.

        Star-join predicates name dimension attributes without qualifying the
        table (the SQL parser resolves qualified names before calling this);
        the lookup errors out if the attribute is ambiguous or unknown.
        """
        owners = []
        for table in [self.fact, *self.dimensions.values()]:
            if attribute in table.attributes:
                owners.append((table.name, table.attributes[attribute]))
        if not owners:
            raise SchemaError(f"no table in the schema has attribute {attribute!r}")
        if len(owners) > 1:
            names = [name for name, _ in owners]
            raise SchemaError(
                f"attribute {attribute!r} is ambiguous; present in tables {names}"
            )
        return owners[0]

    def parents_of(self, dimension_name: str) -> list[SnowflakeEdge]:
        """Return the snowflake edges whose child is ``dimension_name``."""
        return [edge for edge in self.snowflake_edges if edge.child_table == dimension_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StarSchema(fact={self.fact.name!r}, "
            f"dimensions={self.dimension_names}, snowflake={self.is_snowflake})"
        )
