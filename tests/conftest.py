"""Shared fixtures for the test suite.

The fixtures keep data deliberately small so the whole suite runs in seconds:

* ``tiny_db`` — a hand-built two-dimension star database whose query answers
  can be verified by hand; used by the executor / mechanism unit tests.
* ``ssb_small`` — a seeded SSB instance with a few thousand fact rows; used by
  integration-style tests over the real schema and queries.
* ``snowflake_small`` — the snowflake (Date → Month) variant.
* ``small_graph`` — a power-law graph small enough for the join-based k-star
  reference count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.ssb import SSBConfig, SSBGenerator, ssb_schema
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema
from repro.db.database import StarDatabase
from repro.db.domains import AttributeDomain
from repro.db.schema import ForeignKey, StarSchema, TableSchema
from repro.db.table import Column, Table
from repro.graph.generators import powerlaw_graph


# ----------------------------------------------------------------------
# a tiny, hand-checkable star database
# ----------------------------------------------------------------------
def build_tiny_database() -> StarDatabase:
    """Two dimensions (Color, Size), one fact table with 12 rows.

    Fact rows reference colours [red, red, green, blue, ...] and sizes so that
    query answers are easy to compute by hand in the tests.
    """
    color_domain = AttributeDomain.categorical("color", ("red", "green", "blue"))
    size_domain = AttributeDomain.from_values("size", (1, 2, 3, 4))

    color_schema = TableSchema(name="Color", key="ColorKey", attributes={"color": color_domain})
    size_schema = TableSchema(name="Size", key="SizeKey", attributes={"size": size_domain})
    fact_schema = TableSchema(name="Sales", key=None, measures=("amount",))
    schema = StarSchema(
        fact=fact_schema,
        dimensions=[color_schema, size_schema],
        foreign_keys=[
            ForeignKey(fact_column="ColorKey", dimension_table="Color", dimension_key="ColorKey"),
            ForeignKey(fact_column="SizeKey", dimension_table="Size", dimension_key="SizeKey"),
        ],
    )

    # 6 colour rows: two of each colour.
    color_table = Table(
        "Color",
        [
            Column("ColorKey", np.arange(6)),
            Column("color", np.array([0, 0, 1, 1, 2, 2]), domain=color_domain),
        ],
    )
    # 4 size rows, one per size.
    size_table = Table(
        "Size",
        [
            Column("SizeKey", np.arange(4)),
            Column("size", np.array([0, 1, 2, 3]), domain=size_domain),
        ],
    )
    # 12 fact rows: colour keys cycle 0..5, size keys cycle 0..3.
    fact_table = Table(
        "Sales",
        [
            Column("ColorKey", np.arange(12) % 6),
            Column("SizeKey", np.arange(12) % 4),
            Column("amount", np.arange(12, dtype=np.float64) + 1.0),
        ],
    )
    return StarDatabase(
        schema=schema,
        fact=fact_table,
        dimensions={"Color": color_table, "Size": size_table},
    )


@pytest.fixture(scope="session")
def tiny_db() -> StarDatabase:
    return build_tiny_database()


@pytest.fixture(scope="session")
def ssb_schema_fixture():
    return ssb_schema()


@pytest.fixture(scope="session")
def ssb_small() -> StarDatabase:
    config = SSBConfig(scale_factor=1.0, rows_per_scale_factor=6000, seed=42)
    return SSBGenerator(config).build()


@pytest.fixture(scope="session")
def ssb_skewed() -> StarDatabase:
    config = SSBConfig(
        scale_factor=1.0,
        rows_per_scale_factor=6000,
        key_distribution="zipf",
        measure_distribution="exponential",
        seed=43,
    )
    return SSBGenerator(config).build()


@pytest.fixture(scope="session")
def snowflake_schema_fixture():
    return snowflake_schema()


@pytest.fixture(scope="session")
def snowflake_small() -> StarDatabase:
    config = SnowflakeConfig(scale_factor=1.0, rows_per_scale_factor=6000, seed=44)
    return SnowflakeGenerator(config).build()


@pytest.fixture(scope="session")
def small_graph():
    return powerlaw_graph(num_nodes=400, num_edges=1200, rng=7, name="test-graph")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
