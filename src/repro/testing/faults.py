"""A TCP chaos proxy for fault-injection tests and benchmarks.

:class:`ChaosProxy` listens on an ephemeral local port and forwards every
connection to an upstream ``(host, port)``, applying a :class:`FaultSpec` to
each chunk of forwarded bytes: silent drops (the "1% frame loss" of the
``fault_tolerance`` benchmark), added latency, bit corruption, mid-chunk
truncation (the connection closes after half a chunk), probabilistic
connection kills, and a global freeze that holds connections open without
forwarding anything.  Faults are applied symmetrically to both directions
of a connection.

The proxy is deterministic: every connection draws its fault decisions from
a :class:`random.Random` seeded by ``(seed, connection index)``, so a suite
that replays the same connection/traffic order sees the same faults.  The
spec can be swapped at runtime (:meth:`ChaosProxy.set_faults`), which is how
tests script scenarios like "run clean, then corrupt everything, then heal"
against one live proxy.  :meth:`ChaosProxy.kill_connections` hard-closes
every open connection at once — the "server vanished mid-conversation"
event the cache client's circuit breaker must absorb.

The implementation is deliberately plain ``threading`` + blocking sockets
(two pump threads per connection): chaos must stay trivially debuggable,
and the proxied servers in this repository are asyncio already.

Typical use::

    with CacheServerThread() as handle:
        with ChaosProxy("127.0.0.1", handle.server.port) as proxy:
            backend = RemoteCacheBackend(host="127.0.0.1", port=proxy.port, ...)
            proxy.set_faults(corrupt_rate=1.0)   # every chunk now garbage
            ...                                  # breaker trips to local-only
            proxy.set_faults()                   # network heals
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, fields, replace
from typing import Optional

__all__ = ["ChaosProxy", "FaultSpec"]

#: Bytes per forwarded chunk.  Small enough that one cache-protocol frame
#: spans several chunks (so drop/corrupt rates translate into torn frames),
#: large enough that clean forwarding stays cheap.
_CHUNK = 16 * 1024


@dataclass(frozen=True)
class FaultSpec:
    """What the proxy does to each forwarded chunk (all probabilities 0..1).

    The default spec is fully transparent.  Rates compose in the order
    kill → drop → corrupt → truncate; ``delay_s`` applies (with probability
    ``delay_rate``) before the chunk is forwarded.
    """

    drop_rate: float = 0.0      #: silently discard the chunk (frame loss)
    corrupt_rate: float = 0.0   #: XOR-flip a byte in the chunk
    truncate_rate: float = 0.0  #: forward half the chunk, then kill the link
    kill_rate: float = 0.0      #: close the connection before forwarding
    delay_s: float = 0.0        #: latency added to delayed chunks
    delay_rate: float = 1.0     #: fraction of chunks ``delay_s`` applies to
    freeze: bool = False        #: stop forwarding entirely; hold links open

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "truncate_rate", "kill_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate!r}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s!r}")

    @property
    def transparent(self) -> bool:
        """Whether this spec forwards everything untouched."""
        return self == FaultSpec()


class _Pump(threading.Thread):
    """Forward one direction of one connection, applying the active spec."""

    def __init__(self, proxy: "ChaosProxy", source: socket.socket,
                 sink: socket.socket, rng: random.Random, label: str):
        super().__init__(name=f"chaos-{label}", daemon=True)
        self.proxy = proxy
        self.source = source
        self.sink = sink
        self.rng = rng

    def run(self) -> None:
        try:
            while True:
                try:
                    chunk = self.source.recv(_CHUNK)
                except OSError:
                    break
                if not chunk:
                    break
                if not self._forward(chunk):
                    break
        finally:
            # Half-close is enough to propagate EOF; full close happens when
            # the connection entry is reaped.
            for sock in (self.sink, self.source):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _forward(self, chunk: bytes) -> bool:
        proxy = self.proxy
        # Freeze: hold the chunk (and the connection) until thawed or stopped.
        while True:
            spec = proxy.spec
            if not spec.freeze:
                break
            if proxy.stopped.wait(0.01):
                return False
        rng = self.rng
        with proxy.lock:
            proxy.chunks_seen += 1
        if spec.kill_rate and rng.random() < spec.kill_rate:
            with proxy.lock:
                proxy.connections_killed += 1
            return False
        if spec.drop_rate and rng.random() < spec.drop_rate:
            with proxy.lock:
                proxy.chunks_dropped += 1
            return True  # silently lost; keep the connection up
        if spec.delay_s and rng.random() < spec.delay_rate:
            time.sleep(spec.delay_s)
        if spec.corrupt_rate and rng.random() < spec.corrupt_rate:
            position = rng.randrange(len(chunk))
            flipped = chunk[position] ^ (1 + rng.randrange(255))
            chunk = chunk[:position] + bytes([flipped]) + chunk[position + 1 :]
            with proxy.lock:
                proxy.chunks_corrupted += 1
        truncate = bool(spec.truncate_rate and rng.random() < spec.truncate_rate)
        if truncate:
            chunk = chunk[: max(1, len(chunk) // 2)]
            with proxy.lock:
                proxy.chunks_truncated += 1
        try:
            self.sink.sendall(chunk)
        except OSError:
            return False
        with proxy.lock:
            proxy.chunks_forwarded += 1
        return not truncate


class ChaosProxy:
    """A fault-injecting TCP proxy in front of ``(upstream_host, upstream_port)``.

    Binds an ephemeral local port on :meth:`start` (also the context-manager
    entry); clients connect to :attr:`port` instead of the real server.  All
    fault state is runtime-mutable and all counters are exposed via
    :meth:`stats`.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        spec: Optional[FaultSpec] = None,
        host: str = "127.0.0.1",
        seed: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.host = host
        self.port: Optional[int] = None
        self.seed = int(seed)
        self._spec = spec if spec is not None else FaultSpec()
        self.lock = threading.Lock()
        self.stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: list[tuple[socket.socket, socket.socket]] = []
        # Counters (guarded by ``lock``).
        self.connections_accepted = 0
        self.connections_killed = 0
        self.connections_refused = 0
        self.chunks_seen = 0
        self.chunks_forwarded = 0
        self.chunks_dropped = 0
        self.chunks_corrupted = 0
        self.chunks_truncated = 0

    # ------------------------------------------------------------------
    # fault control
    # ------------------------------------------------------------------
    @property
    def spec(self) -> FaultSpec:
        with self.lock:
            return self._spec

    def set_faults(self, **changes) -> FaultSpec:
        """Replace the active fault spec (no arguments → fully transparent).

        Field names follow :class:`FaultSpec`; unknown names raise so a typo
        cannot silently run a clean "chaos" test.
        """
        known = {field.name for field in fields(FaultSpec)}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise TypeError(f"unknown fault fields {unknown}; available: {sorted(known)}")
        spec = FaultSpec(**changes)
        with self.lock:
            self._spec = spec
        return spec

    def freeze(self) -> None:
        """Hold every connection open but forward nothing (server 'hangs')."""
        with self.lock:
            self._spec = replace(self._spec, freeze=True)

    def thaw(self) -> None:
        with self.lock:
            self._spec = replace(self._spec, freeze=False)

    def kill_connections(self) -> int:
        """Hard-close every open proxied connection; returns how many."""
        with self.lock:
            connections, self._connections = self._connections, []
        for pair in connections:
            for sock in pair:
                # shutdown() before close(): a pump thread blocked in recv()
                # still holds the open file description, so a bare close()
                # would leave the TCP link up (no FIN) until that recv
                # returns.  shutdown() tears the connection down immediately
                # and wakes the pump with EOF.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        with self.lock:
            self.connections_killed += len(connections)
        return len(connections)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        if self._listener is not None:
            return self
        self.stopped.clear()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self.stopped.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=10
                )
            except OSError:
                with self.lock:
                    self.connections_refused += 1
                client.close()
                continue
            with self.lock:
                self.connections_accepted += 1
                index = self.connections_accepted
                self._connections.append((client, upstream))
            # One deterministic stream per connection, shared by both pumps
            # through distinct spawns so directions cannot desynchronise
            # each other's draws.
            _Pump(self, client, upstream,
                  random.Random(f"{self.seed}:{index}:c2s"), f"c2s-{index}").start()
            _Pump(self, upstream, client,
                  random.Random(f"{self.seed}:{index}:s2c"), f"s2c-{index}").start()

    def stop(self) -> None:
        self.stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self.kill_connections()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self.lock:
            return {
                "connections_accepted": self.connections_accepted,
                "connections_killed": self.connections_killed,
                "connections_refused": self.connections_refused,
                "chunks_seen": self.chunks_seen,
                "chunks_forwarded": self.chunks_forwarded,
                "chunks_dropped": self.chunks_dropped,
                "chunks_corrupted": self.chunks_corrupted,
                "chunks_truncated": self.chunks_truncated,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosProxy({self.host}:{self.port} -> "
            f"{self.upstream_host}:{self.upstream_port}, {self.spec})"
        )
