"""k-star counting on a social-network-like graph under DP (paper Section 6).

A k-star (a centre user with k distinct friends) is the self-join query the
paper uses to stress mechanisms on graph data.  The script builds a
Deezer-like power-law graph, counts 2-stars and 3-stars exactly, and compares
the Predicate Mechanism against R2T and the truncation-with-smooth-sensitivity
baseline (TM) on both utility and running time — a Table-2-style comparison.

Run it with ``python examples/graph_kstar.py``.
"""

from __future__ import annotations

import time

from repro import deezer_like, kstar_count
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import evaluate_kstar_mechanism, make_kstar_mechanism
from repro.workloads.kstar_queries import q2star, q3star

GRAPH_SCALE = 0.25  # fraction of the original Deezer size; raise to 1.0 for full size
EPSILONS = (0.1, 0.5, 1.0)
TRIALS = 5


def main() -> None:
    print(f"Generating a Deezer-like power-law graph at scale {GRAPH_SCALE}...")
    start = time.perf_counter()
    graph = deezer_like(rng=2023, scale=GRAPH_SCALE)
    print(
        f"  {graph.num_nodes} nodes, {graph.num_edges} edges, "
        f"max degree {graph.max_degree()} ({time.perf_counter() - start:.1f}s)"
    )

    rows = []
    for query in (q2star(graph), q3star(graph)):
        exact = kstar_count(graph, query)
        print(f"\n{query.label}: exact count = {exact:,.0f}")
        for epsilon in EPSILONS:
            for mechanism_name in ("PM", "R2T", "TM"):
                mechanism = make_kstar_mechanism(mechanism_name, epsilon)
                evaluation = evaluate_kstar_mechanism(
                    mechanism, graph, query, trials=TRIALS, rng=7, exact_answer=exact
                )
                rows.append(
                    [
                        query.label,
                        epsilon,
                        mechanism_name,
                        f"{evaluation.mean_relative_error:.1f}%",
                        f"{evaluation.mean_time * 1000:.1f} ms",
                    ]
                )

    print("\nRelative error and time per run:")
    print(format_table(["query", "epsilon", "mechanism", "rel. error", "time"], rows))
    print(
        "\nNote: PM answers the noisy node-range predicate exactly and needs no "
        "truncation pass, which is why it is the fastest of the three."
    )


if __name__ == "__main__":
    main()
