"""Figure 9: error of independent PM vs Workload Decomposition on W1 / W2.

The paper answers the two star-join workloads under each privacy budget with
(a) the Predicate Mechanism applied to every query independently and (b) the
Workload Decomposition strategy (Algorithm 4), and shows that WD always
introduces lower error, especially on W1 (whose per-attribute predicate
matrices contain many repeated rows).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.workload import IndependentPMWorkload, WorkloadDecomposition, answer_workload_exact
from repro.datagen.ssb import ssb_schema
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_seed
from repro.evaluation.metrics import workload_relative_error
from repro.evaluation.reporting import ExperimentResult
from repro.rng import spawn
from repro.workloads.workload_matrices import workload_w1, workload_w2

__all__ = ["run"]


def run(
    config: Optional[ExperimentConfig] = None,
    epsilons: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (workload error of PM vs WD by varying ε)."""
    config = config or ExperimentConfig()
    epsilons = tuple(epsilons) if epsilons is not None else config.epsilons
    database = build_ssb_database(config)
    schema = ssb_schema()
    workloads = {"W1": workload_w1(schema), "W2": workload_w2(schema)}

    result = ExperimentResult(
        title="Figure 9: error level of PM and WD on workload queries by varying epsilon",
        notes=f"{config.trials} trials per cell.",
    )
    for workload_name, queries in workloads.items():
        exact = answer_workload_exact(database, queries)
        for epsilon in epsilons:
            for mechanism_name, mechanism_cls in (("PM", IndependentPMWorkload), ("WD", WorkloadDecomposition)):
                errors = []
                for trial_rng in spawn(config.seed + cell_seed(workload_name, epsilon, mechanism_name),
                                       config.trials):
                    mechanism = mechanism_cls(epsilon=epsilon)
                    answer = mechanism.answer(database, queries, rng=trial_rng)
                    errors.append(workload_relative_error(exact, answer.values))
                result.add_row(
                    workload=workload_name,
                    epsilon=epsilon,
                    mechanism=mechanism_name,
                    relative_error_pct=float(np.mean(errors)),
                    num_queries=len(queries),
                )
    return result
