"""Tests for the experiment CLI."""

import pytest

from repro.evaluation.cli import EXPERIMENTS, main, run_experiments
from repro.evaluation.experiments import ExperimentConfig


@pytest.fixture()
def tiny_config():
    return ExperimentConfig(
        epsilons=(0.5,), trials=1, scale_factor=1.0, rows_per_scale_factor=4000, seed=3
    )


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
        }


class TestRunExperiments:
    def test_unknown_name_rejected_before_running(self, tiny_config):
        with pytest.raises(KeyError):
            run_experiments(["table1", "figure99"], tiny_config, echo=lambda _: None)

    def test_runs_and_writes_csv(self, tiny_config, tmp_path):
        messages = []
        results = run_experiments(
            ["figure9"], tiny_config, output_dir=tmp_path, echo=messages.append
        )
        assert "figure9" in results
        assert (tmp_path / "figure9.csv").exists()
        assert any("figure9" in message for message in messages)


class TestMain:
    def test_main_with_single_quick_experiment(self, tmp_path, monkeypatch, capsys):
        exit_code = main(
            [
                "--only",
                "figure9",
                "--trials",
                "1",
                "--rows-per-scale-factor",
                "4000",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert (tmp_path / "figure9.csv").exists()

    def test_main_unknown_experiment_returns_error_code(self, capsys):
        assert main(["--only", "not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err
