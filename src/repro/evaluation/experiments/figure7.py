"""Figure 7: error of PM, R2T and LS under different data distributions.

The paper regenerates the SSB instance with values following Uniform,
Exponential and Gamma distributions and reports the error of Qc3 (COUNT) and
Qs3 (SUM) across data scales.  The observation to reproduce: PM performs best
on uniform data and degrades as the data becomes more skewed — because PM
answers a *shifted* predicate exactly, its error is exactly the difference in
mass between the true and the shifted predicate region, which grows with
skew — while the baselines' behaviour is dominated by their noise scales.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.datagen.distributions import MEASURE_DISTRIBUTIONS
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_seed
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "DISTRIBUTIONS", "QUERIES", "MECHANISMS"]

DISTRIBUTIONS = ("uniform", "exponential", "gamma")
QUERIES = ("Qc3", "Qs3")
MECHANISMS = ("PM", "R2T", "LS")


def run(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = DISTRIBUTIONS,
    scales: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 7 (error under different distributions and scales)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        title="Figure 7: error level for different data distributions (Qc3 / Qs3)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    grid = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(
                config,
                scale,
                distribution,
                # Key-only distributions (e.g. Zipf) fall back to uniform measures.
                distribution if distribution in MEASURE_DISTRIBUTIONS else "uniform",
                cell_seed(distribution, scale, modulus=1000),
            ),
            stream=("figure7", distribution, scale, query_name, mechanism_name),
        )
        for distribution in distributions
        for scale in scales
        for query_name in query_names
        for mechanism_name in mechanisms
    ]
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        result.add_row(
            distribution=cell.database_args[2],
            scale=cell.database_args[1],
            query=cell.query_args[0],
            mechanism=cell.mechanism,
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
        )
    return result
