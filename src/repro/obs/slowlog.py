"""Structured slow-query log for the serving tier.

``--slow-query-ms N`` makes the server append one JSON line for every
request whose wall-clock (queue wait included) crosses the threshold::

    {"ts_s": <epoch>, "elapsed_ms": ..., "threshold_ms": ...,
     "trace_id": ... | null, "database": ..., "query": <fingerprint|name>,
     "epsilon": ..., "trials": ..., "analyst": ...,
     "stages": {"serve.plan": s, "serve.execute": s, "queue_wait": s, ...}}

The per-stage timings come from the request's root span roll-up when
tracing is on, and degrade to the coarse queue-wait/execution split the
server measures anyway when it is off — the log works without tracing,
it is just less detailed.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Optional

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Threshold-filtered JSONL sink (thread-safe, append-only)."""

    def __init__(self, path: str, threshold_ms: float):
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be non-negative")
        self.path = str(path)
        self.threshold_ms = float(threshold_ms)
        self.recorded = 0
        self._lock = threading.Lock()
        with open(self.path, "w", encoding="utf-8"):
            pass  # truncate so each run's log starts clean

    def record_if_slow(self, elapsed_s: float, **fields: Any) -> bool:
        """Append a record when ``elapsed_s`` crosses the threshold; returns
        whether it did.  ``fields`` must be JSON-serialisable."""
        elapsed_ms = elapsed_s * 1000.0
        if elapsed_ms < self.threshold_ms:
            return False
        record = {
            "ts_s": round(time.time(), 6),
            "pid": os.getpid(),
            "elapsed_ms": round(elapsed_ms, 3),
            "threshold_ms": self.threshold_ms,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self.recorded += 1
        return True

    def stats(self) -> dict:
        return {
            "path": self.path,
            "threshold_ms": self.threshold_ms,
            "recorded": self.recorded,
        }
