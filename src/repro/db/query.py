"""Star-join query objects: aggregates, GROUP BY and the query itself.

A :class:`StarJoinQuery` is the library's representation of the paper's
query template::

    SELECT Aggr(*) FROM R WHERE Φ [GROUP BY g1, g2, ...]

where ``Aggr`` is COUNT, SUM or AVG over a fact-table measure and Φ is a
conjunction of single-table predicates on dimension attributes
(:class:`~repro.db.predicates.ConjunctionPredicate`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.db.predicates import ConjunctionPredicate, Predicate
from repro.exceptions import QueryError

__all__ = ["AggregateKind", "Measure", "Aggregate", "GroupBy", "StarJoinQuery"]


class AggregateKind(enum.Enum):
    """Supported aggregate functions over the fact table."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class Measure:
    """A fact-table measure expression.

    Either a single measure column, or the difference of two measure columns
    (needed for the appendix query Qg4, ``sum(revenue - supplycost)``).
    """

    column: str
    subtract: Optional[str] = None

    def describe(self) -> str:
        if self.subtract is None:
            return self.column
        return f"{self.column} - {self.subtract}"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate function applied to the join result.

    COUNT ignores the measure (``w(t) = 1`` in Eq. 2); SUM and AVG require
    one (``w(t)`` is the measure value of tuple ``t``).
    """

    kind: AggregateKind
    measure: Optional[Measure] = None

    def __post_init__(self) -> None:
        if self.kind is AggregateKind.COUNT:
            return
        if self.measure is None:
            raise QueryError(f"{self.kind.value.upper()} aggregate requires a measure")

    @classmethod
    def count(cls) -> "Aggregate":
        return cls(kind=AggregateKind.COUNT)

    @classmethod
    def sum(cls, column: str, subtract: Optional[str] = None) -> "Aggregate":
        return cls(kind=AggregateKind.SUM, measure=Measure(column, subtract))

    @classmethod
    def avg(cls, column: str) -> "Aggregate":
        return cls(kind=AggregateKind.AVG, measure=Measure(column))

    def describe(self) -> str:
        if self.kind is AggregateKind.COUNT:
            return "COUNT(*)"
        return f"{self.kind.value.upper()}({self.measure.describe()})"


@dataclass(frozen=True)
class GroupBy:
    """GROUP BY keys: (table, attribute) pairs over dimension tables."""

    keys: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise QueryError("GROUP BY requires at least one key")

    def __iter__(self):
        return iter(self.keys)

    def __len__(self) -> int:
        return len(self.keys)

    def describe(self) -> str:
        return ", ".join(f"{table}.{attribute}" for table, attribute in self.keys)


@dataclass(frozen=True)
class StarJoinQuery:
    """An aggregate star-join query.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"Qc3"``).
    aggregate:
        The aggregate function over the fact table.
    predicates:
        The composite predicate Φ — a conjunction of single-table predicates
        on dimension attributes.  An empty conjunction means "no filter".
    group_by:
        Optional GROUP BY clause.
    """

    name: str
    aggregate: Aggregate
    predicates: ConjunctionPredicate = field(default_factory=ConjunctionPredicate)
    group_by: Optional[GroupBy] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def count(
        cls,
        name: str,
        predicates: Iterable[Predicate] = (),
        group_by: Optional[Sequence[tuple[str, str]]] = None,
    ) -> "StarJoinQuery":
        return cls(
            name=name,
            aggregate=Aggregate.count(),
            predicates=ConjunctionPredicate.of(predicates),
            group_by=GroupBy(tuple(group_by)) if group_by else None,
        )

    @classmethod
    def sum(
        cls,
        name: str,
        measure: str,
        predicates: Iterable[Predicate] = (),
        measure_subtract: Optional[str] = None,
        group_by: Optional[Sequence[tuple[str, str]]] = None,
    ) -> "StarJoinQuery":
        return cls(
            name=name,
            aggregate=Aggregate.sum(measure, measure_subtract),
            predicates=ConjunctionPredicate.of(predicates),
            group_by=GroupBy(tuple(group_by)) if group_by else None,
        )

    @classmethod
    def avg(
        cls,
        name: str,
        measure: str,
        predicates: Iterable[Predicate] = (),
    ) -> "StarJoinQuery":
        return cls(
            name=name,
            aggregate=Aggregate.avg(measure),
            predicates=ConjunctionPredicate.of(predicates),
        )

    # ------------------------------------------------------------------
    # structural helpers used by the DP mechanisms
    # ------------------------------------------------------------------
    @property
    def is_grouped(self) -> bool:
        return self.group_by is not None

    @property
    def kind(self) -> AggregateKind:
        return self.aggregate.kind

    @property
    def num_predicates(self) -> int:
        """Number of member predicates (``n`` in the per-predicate budget split)."""
        return len(self.predicates)

    @property
    def predicate_tables(self) -> list[str]:
        return self.predicates.tables

    def domain_sizes(self) -> list[int]:
        return self.predicates.domain_sizes()

    def with_predicates(self, predicates: Iterable[Predicate]) -> "StarJoinQuery":
        """Return a copy of the query with Φ replaced (used after perturbation)."""
        return StarJoinQuery(
            name=self.name,
            aggregate=self.aggregate,
            predicates=ConjunctionPredicate.of(predicates),
            group_by=self.group_by,
        )

    def describe(self) -> str:
        text = f"SELECT {self.aggregate.describe()} WHERE {self.predicates.describe()}"
        if self.group_by is not None:
            text += f" GROUP BY {self.group_by.describe()}"
        return text
