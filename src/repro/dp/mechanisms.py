"""Basic output-perturbation mechanisms.

These are the generic DP building blocks (Section 4 of the paper calls them
the "basic mechanism"): add calibrated noise to a real-valued query answer.
The star-join-specific baselines in :mod:`repro.baselines` and the Predicate
Mechanism in :mod:`repro.core` are built on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dp.noise import cauchy_noise, laplace_noise, laplace_variance
from repro.rng import RngLike

__all__ = ["Mechanism", "LaplaceMechanism", "CauchyMechanism"]


class Mechanism(Protocol):
    """Protocol for scalar output-perturbation mechanisms."""

    def randomise(self, true_value: float, rng: RngLike = None) -> float:
        """Return a privatised version of ``true_value``."""
        ...


@dataclass(frozen=True)
class LaplaceMechanism:
    """The Laplace mechanism (Theorem 3.2): ``A(D) = Q(D) + Lap(Δ/ε)``.

    Parameters
    ----------
    sensitivity:
        The (global or smooth upper-bound) L1 sensitivity Δ.
    epsilon:
        The privacy budget ε.
    """

    sensitivity: float
    epsilon: float

    def randomise(self, true_value: float, rng: RngLike = None) -> float:
        return float(true_value) + laplace_noise(self.sensitivity, self.epsilon, rng=rng)

    def randomise_vector(self, true_values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        values = np.asarray(true_values, dtype=np.float64)
        return values + laplace_noise(self.sensitivity, self.epsilon, size=values.shape, rng=rng)

    @property
    def variance(self) -> float:
        """Noise variance ``2 (Δ/ε)²``."""
        return laplace_variance(self.sensitivity, self.epsilon)


@dataclass(frozen=True)
class CauchyMechanism:
    """The general Cauchy mechanism calibrated to a smooth sensitivity bound.

    With γ = 4 (the paper's choice) the mechanism adds
    ``Cauchy(2(γ+1)·S/ε) = Cauchy(10·S/ε)`` noise and satisfies pure ε-DP when
    ``S`` is a β-smooth upper bound with β = ε / (2(γ+1)).
    """

    smooth_sensitivity: float
    epsilon: float
    gamma: float = 4.0

    def randomise(self, true_value: float, rng: RngLike = None) -> float:
        return float(true_value) + cauchy_noise(
            self.smooth_sensitivity, self.epsilon, gamma=self.gamma, rng=rng
        )

    def randomise_vector(self, true_values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        values = np.asarray(true_values, dtype=np.float64)
        noise = cauchy_noise(
            self.smooth_sensitivity, self.epsilon, gamma=self.gamma, size=values.shape, rng=rng
        )
        return values + noise
