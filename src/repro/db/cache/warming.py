"""Background cache population (warm-ahead).

Cost-aware eviction decides what to *keep*; this module decides what to
*pre-compute*.  Execution paths that observe a cold exact answer record the
``(database, query)`` miss into a process-wide :class:`WarmingQueue`; a
:class:`WarmAheadWorker` later replays those queries through the ordinary
:class:`~repro.db.executor.QueryExecutor` — between requests on the serving
tier, or after each experiment in an opt-in batch mode — so the put-through
cache tiers (shared manager, remote server with persistence) are populated
before the next analyst asks.

Replays happen at *query* level, not key level: wire keys are content
fingerprints and cannot be reversed into work, but re-executing the query
recreates every artefact (masks, contributions, cubes, the answer itself)
under exactly the keys any later request will look up.  Because every cached
value is a pure function of its key, a warmed entry is byte-identical to the
entry the miss would eventually have produced — warming changes *when* work
happens, never *what* is computed, so results stay byte-identical with
warming on or off (the parity suite pins this).

The cache server keeps its own complementary miss log (the ``warm`` wire op,
see :class:`~repro.db.cache.server.MissLog`): the server sees every client's
misses but cannot replay them; this queue can replay but only sees its own
process.  The serving tier uses the queue (it holds the live databases);
the server log is observability and cross-process coordination.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Any, Optional

from repro.db.cache.fingerprints import query_fingerprint
from repro.obs.metrics import active_registry
from repro.obs.trace import span

__all__ = [
    "WarmAheadWorker",
    "WarmingQueue",
    "active_queue",
    "queue_scope",
    "record_query_miss",
    "set_active_queue",
]


class _Task:
    """One observed miss: a weakly-held database and the query to replay."""

    __slots__ = ("database_ref", "query", "misses", "order")

    def __init__(self, database, query, order: int):
        self.database_ref = weakref.ref(database)
        self.query = query
        self.misses = 1
        self.order = order  # first-seen sequence: the deterministic tie-break


class WarmingQueue:
    """Bounded, de-duplicated queue of observed exact-answer misses.

    Tasks are keyed by ``(database namespace, query fingerprint)``: the same
    query missing twice raises its miss count instead of queueing twice.
    Draining hands tasks out hottest-first (miss count descending, first-seen
    order as the tie-break), so a bounded warming budget goes to the queries
    analysts actually repeat.  When full, the *coldest* task is dropped to
    admit a new one — a fresh miss always gets a seat.
    """

    def __init__(self, max_tasks: int = 256):
        if max_tasks < 1:
            raise ValueError("max_tasks must be at least 1")
        self.max_tasks = int(max_tasks)
        self._tasks: dict[Any, _Task] = {}
        self._lock = threading.Lock()
        self._order = 0
        self.recorded = 0
        self.deduplicated = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(self, database, query) -> bool:
        """Note that ``query`` missed on ``database``; returns whether the
        miss is now queued (``False`` only for unfingerprintable queries)."""
        fingerprint = query_fingerprint(query)
        if fingerprint is None:
            return False
        key = (database.cache_fingerprint(), fingerprint)
        with self._lock:
            self.recorded += 1
            task = self._tasks.get(key)
            if task is not None:
                task.misses += 1
                self.deduplicated += 1
                return True
            self._order += 1
            self._tasks[key] = _Task(database, query, self._order)
            if len(self._tasks) > self.max_tasks:
                # Drop the coldest resident: fewest misses, oldest first.
                # The incoming task has the newest order, so a fresh miss
                # always keeps its seat.
                coldest = min(
                    self._tasks, key=lambda k: (self._tasks[k].misses, self._tasks[k].order)
                )
                del self._tasks[coldest]
                self.dropped += 1
        return True

    def drain(self, max_tasks: Optional[int] = None) -> list[_Task]:
        """Remove and return up to ``max_tasks`` tasks, hottest first."""
        with self._lock:
            ordered = sorted(self._tasks.values(), key=lambda t: (-t.misses, t.order))
            take = ordered if max_tasks is None else ordered[: int(max_tasks)]
            for task in take:
                database = task.database_ref()
                key = (
                    (database.cache_fingerprint(), query_fingerprint(task.query))
                    if database is not None
                    else None
                )
                if key is not None:
                    self._tasks.pop(key, None)
            if max_tasks is None:
                self._tasks.clear()
        return take

    def requeue(self, tasks: "list[_Task]") -> None:
        """Put drained-but-unreplayed tasks back (a budget stop must not
        lose the misses it had no time for); miss counts merge on collision."""
        with self._lock:
            for task in tasks:
                database = task.database_ref()
                if database is None:
                    continue
                key = (database.cache_fingerprint(), query_fingerprint(task.query))
                existing = self._tasks.get(key)
                if existing is not None:
                    existing.misses += task.misses
                else:
                    self._tasks[key] = task

    def __len__(self) -> int:
        with self._lock:
            return len(self._tasks)

    def stats(self) -> dict:
        with self._lock:
            return {
                "pending": len(self._tasks),
                "recorded": self.recorded,
                "deduplicated": self.deduplicated,
                "dropped": self.dropped,
            }


class WarmAheadWorker:
    """Replays queued misses against the engine to pre-populate caches.

    Driven synchronously by whoever owns idle time: the serving tier calls
    :meth:`run_once` between requests, the evaluation CLI after each
    experiment.  There is no thread of its own — the *caller* decides when
    warming may consume cycles, which keeps warming strictly subordinate to
    foreground work.
    """

    def __init__(self, queue: WarmingQueue):
        self.queue = queue
        self.replayed = 0
        self.failed = 0
        self.skipped_dead = 0
        self.requeued_on_stop = 0
        self.spent_s = 0.0
        # Shutdown handshake: `_stop` tells a drain in progress to wind down
        # (finish the current replay, requeue the rest); `_idle` is set
        # whenever no drain is running, so stop() can join deterministically.
        self._stop = threading.Event()
        self._idle = threading.Event()
        self._idle.set()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def run_once(
        self, max_tasks: Optional[int] = 8, budget_s: Optional[float] = None
    ) -> int:
        """Replay up to ``max_tasks`` queued misses (``budget_s`` caps the
        wall-clock spent); returns how many were replayed.  Returns 0
        immediately once :meth:`stop` has been called."""
        from repro.db.executor import QueryExecutor  # lazy: avoids a cycle

        if self._stop.is_set():
            return 0
        began = time.perf_counter()
        warmed = 0
        self._idle.clear()
        # Replays must not re-record themselves as misses (this thread only —
        # foreground threads keep recording while a replay runs).
        _SUPPRESS.active = True
        try:
            with span("warming.replay") as current:
                batch = self.queue.drain(max_tasks)
                for index, task in enumerate(batch):
                    if self._stop.is_set():
                        # Mid-drain stop: the replay that already started ran
                        # to completion (cache writes are atomic per entry);
                        # everything not yet replayed goes back on the queue
                        # so no observed miss is lost to the shutdown.
                        remainder = batch[index:]
                        self.queue.requeue(remainder)
                        self.requeued_on_stop += len(remainder)
                        break
                    if budget_s is not None and time.perf_counter() - began >= budget_s:
                        self.queue.requeue(batch[index:])
                        break
                    database = task.database_ref()
                    if database is None:
                        self.skipped_dead += 1
                        continue
                    try:
                        QueryExecutor(database).execute(task.query)
                        self.replayed += 1
                        warmed += 1
                    except Exception:
                        # A replay failure costs a future cache miss, nothing
                        # more; the foreground path will surface any real defect.
                        self.failed += 1
                if current is not None:
                    current.set(replayed=warmed)
        finally:
            _SUPPRESS.active = False
            self._idle.set()
        elapsed = time.perf_counter() - began
        self.spent_s += elapsed
        if warmed:
            registry = active_registry()
            registry.counter("warming_replayed_total").inc(warmed)
            registry.histogram("warming_replay_seconds").observe(elapsed)
        return warmed

    def stop(self, timeout: float = 10.0) -> None:
        """Deterministic shutdown: no further drains start, and a drain in
        progress finishes its current replay and requeues the remainder of
        its batch (:attr:`requeued_on_stop` counts them).

        Blocks until the in-progress drain (if any) has wound down.  Raises
        ``RuntimeError`` if it has not within ``timeout`` — the same loud
        contract ``ServerThread.stop`` honours — because a replay stuck in
        the engine would otherwise leak silently as a busy thread past
        shutdown.  ``stop`` is idempotent; a worker once stopped stays
        stopped (``run_once`` returns 0).
        """
        self._stop.set()
        if not self._idle.wait(timeout):
            raise RuntimeError(
                f"warm-ahead drain did not stop within {timeout}s; "
                "a replay is stuck in the engine"
            )

    def stats(self) -> dict:
        stats = self.queue.stats()
        stats.update(
            {
                "replayed": self.replayed,
                "failed": self.failed,
                "skipped_dead": self.skipped_dead,
                "requeued_on_stop": self.requeued_on_stop,
                "stopped": self._stop.is_set(),
                "spent_s": round(self.spent_s, 6),
            }
        )
        return stats


# ----------------------------------------------------------------------
# the process-wide active queue (mirrors the active-backend plumbing)
# ----------------------------------------------------------------------
_ACTIVE: Optional[WarmingQueue] = None
_SUPPRESS = threading.local()


def active_queue() -> Optional[WarmingQueue]:
    """The process-wide warming queue, or ``None`` when warming is off."""
    return _ACTIVE


def set_active_queue(queue: Optional[WarmingQueue]) -> Optional[WarmingQueue]:
    """Install (or, with ``None``, remove) the process-wide warming queue;
    returns the previous one."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, queue
    return previous


class queue_scope:
    """``with queue_scope(queue):`` — install a queue, restore on exit."""

    def __init__(self, queue: Optional[WarmingQueue]):
        self.queue = queue
        self._previous: Optional[WarmingQueue] = None

    def __enter__(self) -> Optional[WarmingQueue]:
        self._previous = set_active_queue(self.queue)
        return self.queue

    def __exit__(self, *_exc) -> None:
        set_active_queue(self._previous)


def record_query_miss(database, query) -> None:
    """Record an observed exact-answer miss into the active queue (no-op when
    warming is off).  Called by execution paths that just saw a cold query —
    cheap enough to sit on the hot path: one dict update behind a lock."""
    queue = _ACTIVE
    if queue is not None and not getattr(_SUPPRESS, "active", False):
        queue.record(database, query)
