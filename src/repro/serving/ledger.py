"""Per-analyst privacy-budget ledger with admission control.

The offline harness uses :class:`~repro.dp.accountant.PrivacyAccountant` to
*verify* that a mechanism's internal budget split adds up; the serving layer
uses it to *gate* work: every analyst session gets an accountant with the
server's per-analyst total, and a query request must be admitted — charged
against that accountant — before any engine work runs.

Composition rules (the classical ones the accountant implements):

* **Sequential** — scalar queries compose by addition across an analyst's
  session: k admitted queries at ε_1..ε_k cost Σ ε_i.
* **Parallel** — a GROUP BY query runs its mechanism on *disjoint partitions*
  of the private entities (each entity contributes to exactly one group), so
  the whole grouped answer costs max over the partitions = ε, not ε × groups.
  The ledger records those admissions through
  :meth:`~repro.dp.accountant.PrivacyAccountant.charge_parallel` so the audit
  trail distinguishes them.

Once an analyst's ε (or δ) is exhausted the ledger **refuses** with a
structured :class:`~repro.serving.protocol.ServingError` (code
``budget_exhausted``) carrying the spent/remaining totals — the server turns
it into a JSON error object, never an exception trace.  Charges whose
execution fails without releasing an answer are refunded
(:meth:`BudgetLedger.refund`).

All entry points take the ledger's lock, because the asyncio server executes
engine work on a thread pool: admission (check *and* charge) is atomic, so
two concurrent requests can never both squeeze through one remaining slot.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.exceptions import PrivacyBudgetError
from repro.serving.protocol import ServingError

__all__ = ["BudgetLedger", "DEFAULT_ANALYST_BUDGET"]

#: Per-analyst total installed when the server is not configured otherwise.
DEFAULT_ANALYST_BUDGET = PrivacyBudget(epsilon=10.0)


class BudgetLedger:
    """Admission control over one :class:`PrivacyAccountant` per analyst.

    ``max_analysts`` bounds the number of accountants the ledger will ever
    allocate: analyst names arrive unauthenticated over the wire, so without
    a cap a client cycling through fresh names could grow server memory
    without bound.  Reads (:meth:`summary`) never allocate an account.
    """

    def __init__(
        self,
        analyst_budget: PrivacyBudget = DEFAULT_ANALYST_BUDGET,
        max_analysts: int = 10_000,
    ):
        if max_analysts < 1:
            raise ValueError("max_analysts must be at least 1")
        self.analyst_budget = analyst_budget
        self.max_analysts = int(max_analysts)
        self._accounts: dict[str, PrivacyAccountant] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _account(self, analyst: str) -> PrivacyAccountant:
        account = self._accounts.get(analyst)
        if account is None:
            if len(self._accounts) >= self.max_analysts:
                raise ServingError(
                    "bad_request",
                    f"analyst capacity exhausted ({self.max_analysts} accounts); "
                    "reuse an existing analyst name",
                    max_analysts=self.max_analysts,
                )
            account = PrivacyAccountant(self.analyst_budget)
            self._accounts[analyst] = account
        return account

    def analysts(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._accounts))

    # ------------------------------------------------------------------
    def admit(
        self,
        analyst: str,
        budget: PrivacyBudget,
        label: str = "query",
        parallel: bool = False,
    ) -> PrivacyBudget:
        """Charge ``budget`` to ``analyst`` or refuse; returns the charge.

        ``parallel=True`` records the admission as a parallel composition over
        disjoint GROUP BY partitions (cost = max = ``budget``); the amount is
        the same, the ledger label distinguishes the rule applied.  Refusal
        raises :class:`ServingError` (``budget_exhausted``) with the spent /
        remaining / total ε so the analyst can re-plan; the accountant is left
        untouched on refusal.
        """
        with self._lock:
            account = self._account(analyst)
            try:
                if parallel:
                    account.charge_parallel([budget], label=f"parallel:{label}")
                else:
                    account.charge(budget, label=label)
            except PrivacyBudgetError as error:
                raise ServingError(
                    "budget_exhausted",
                    f"analyst {analyst!r} refused: {error}",
                    analyst=analyst,
                    requested_epsilon=budget.epsilon,
                    requested_delta=budget.delta,
                    spent_epsilon=account.spent_epsilon,
                    remaining_epsilon=account.remaining_epsilon,
                    total_epsilon=account.total.epsilon,
                ) from None
            return budget

    def refund(self, analyst: str, budget: PrivacyBudget, label: str = "query") -> None:
        """Return an admitted charge whose execution released no answer."""
        with self._lock:
            self._account(analyst).refund(budget, label=label)

    # ------------------------------------------------------------------
    def summary(self, analyst: Optional[str] = None) -> dict:
        """JSON-serialisable budget state (the ``budget`` op's payload).

        A read-only operation: asking about an analyst the ledger has never
        charged reports a fresh untouched budget without allocating an
        account (budget probes must not consume the analyst capacity).
        """
        with self._lock:
            if analyst is not None:
                account = self._accounts.get(analyst)
                if account is None:
                    account = PrivacyAccountant(self.analyst_budget)  # transient
                return self._summarise(analyst, account)
            return {
                "analyst_budget_epsilon": self.analyst_budget.epsilon,
                "analyst_budget_delta": self.analyst_budget.delta,
                "analysts": {
                    name: self._summarise(name, account)
                    for name, account in sorted(self._accounts.items())
                },
            }

    @staticmethod
    def _summarise(analyst: str, account: PrivacyAccountant) -> dict:
        return {
            "analyst": analyst,
            "spent_epsilon": account.spent_epsilon,
            "spent_delta": account.spent_delta,
            "remaining_epsilon": account.remaining_epsilon,
            "total_epsilon": account.total.epsilon,
            "total_delta": account.total.delta,
            "charges": len(account.ledger),
        }
