"""A concrete star-schema database instance.

:class:`StarDatabase` binds a :class:`~repro.db.schema.StarSchema` to actual
:class:`~repro.db.table.Table` data and provides the navigation primitives
everything else builds on:

* foreign-key traversal from dimension-row selections to fact-row selections
  (the semi-join at the heart of star-join execution);
* snowflake traversal from an outer dimension (e.g. ``Month``) down to the
  dimension directly referenced by the fact table (e.g. ``Date``);
* fan-out statistics (how many fact tuples reference each dimension key),
  which the truncation- and sensitivity-based baselines are calibrated on.

Foreign-key columns in the fact table store the *row position* of the
referenced dimension tuple, which keeps joins to a single fancy-indexing
operation and makes the foreign-key constraints of the paper's neighbouring
definitions explicit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from repro.db.predicates import Predicate
from repro.db.schema import StarSchema
from repro.db.storage.base import iter_chunks
from repro.db.table import Table
from repro.exceptions import SchemaError

__all__ = ["StarDatabase"]


class StarDatabase:
    """A star-schema database: one fact table plus its dimension tables.

    ``validate=False`` skips the construction-time foreign-key scans.  It is
    used when attaching a spilled mapped layout
    (:func:`repro.db.storage.attach_database`): the scans were performed when
    the instance was originally built and spilled, the files are read-only,
    and re-running them would materialise every mapped FK column — the exact
    cost attachment exists to avoid.
    """

    def __init__(
        self,
        schema: StarSchema,
        fact: Table,
        dimensions: Mapping[str, Table],
        validate: bool = True,
    ):
        self.schema = schema
        self.fact = fact
        self.dimensions: dict[str, Table] = dict(dimensions)
        if validate:
            self._validate()
        # Warm the content-fingerprint memo while the instance is being born
        # (construction already scans every FK column, and attached mapped
        # tables serve their manifest digests): the cache layer can then
        # namespace this database without adding a hashing stall to the
        # first query's latency.
        self.cache_fingerprint(refresh=True)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.fact.name != self.schema.fact.name:
            raise SchemaError(
                f"fact table name {self.fact.name!r} does not match schema "
                f"{self.schema.fact.name!r}"
            )
        missing = set(self.schema.dimension_names) - set(self.dimensions)
        if missing:
            raise SchemaError(f"missing dimension tables: {sorted(missing)}")
        for dim_name, fk in self.schema.foreign_keys.items():
            if fk.fact_column not in self.fact:
                raise SchemaError(
                    f"fact table lacks foreign-key column {fk.fact_column!r} "
                    f"for dimension {dim_name!r}"
                )
            codes = self.fact.codes(fk.fact_column)
            dim_rows = self.dimensions[dim_name].num_rows
            if codes.size and (codes.min() < 0 or codes.max() >= dim_rows):
                raise SchemaError(
                    f"foreign-key column {fk.fact_column!r} references rows outside "
                    f"dimension {dim_name!r} (which has {dim_rows} rows)"
                )
        for edge in self.schema.snowflake_edges:
            child = self.dimensions[edge.child_table]
            parent = self.dimensions[edge.parent_table]
            if edge.child_column not in child:
                raise SchemaError(
                    f"snowflake child {edge.child_table!r} lacks column "
                    f"{edge.child_column!r}"
                )
            codes = child.codes(edge.child_column)
            if codes.size and (codes.min() < 0 or codes.max() >= parent.num_rows):
                raise SchemaError(
                    f"snowflake column {edge.child_table}.{edge.child_column} "
                    f"references rows outside {edge.parent_table!r}"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_fact_rows(self) -> int:
        return self.fact.num_rows

    @property
    def size(self) -> int:
        """Total number of tuples in the instance (``N = |D_s|``)."""
        return self.fact.num_rows + sum(t.num_rows for t in self.dimensions.values())

    def dimension(self, name: str) -> Table:
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(
                f"database has no dimension table {name!r}; "
                f"available: {sorted(self.dimensions)}"
            ) from None

    def table(self, name: str) -> Table:
        if name == self.fact.name:
            return self.fact
        return self.dimension(name)

    def fact_foreign_key_codes(self, dimension_name: str) -> np.ndarray:
        """Fact-table foreign-key codes (dimension row positions) for a dimension."""
        fk = self.schema.foreign_key_for(dimension_name)
        return self.fact.codes(fk.fact_column)

    def is_direct_dimension(self, table_name: str) -> bool:
        """Whether ``table_name`` is a dimension directly referenced by the fact
        table (as opposed to an outer snowflake table or the fact table itself)."""
        return table_name in self.schema.foreign_keys

    def cache_fingerprint(self, refresh: bool = False) -> str:
        """The content-derived cache namespace of this instance.

        Delegates to :func:`repro.db.cache.fingerprints.database_fingerprint`:
        a digest over every table's content plus the join structure,
        deterministic across processes and memoized per instance.  Pass
        ``refresh=True`` after an in-place mutation so the new content
        hashes to a fresh namespace (see
        :meth:`repro.db.engine.ExecutionEngine.invalidate`).
        """
        from repro.db.cache.fingerprints import database_fingerprint

        return database_fingerprint(self, refresh=refresh)

    # ------------------------------------------------------------------
    # snowflake traversal
    # ------------------------------------------------------------------
    def _child_edge(self, parent_table: str):
        for edge in self.schema.snowflake_edges:
            if edge.parent_table == parent_table:
                return edge
        return None

    def resolve_to_direct_dimension(
        self, table_name: str, row_mask: np.ndarray
    ) -> tuple[str, np.ndarray]:
        """Push a row mask from an outer (snowflaked) dimension to a direct one.

        If ``table_name`` is directly referenced by the fact table the mask is
        returned unchanged.  Otherwise the snowflake foreign keys are followed
        child-ward (e.g. a mask over ``Month`` rows becomes a mask over
        ``Date`` rows) until a direct dimension is reached.
        """
        current_table = table_name
        current_mask = np.asarray(row_mask, dtype=bool)
        visited = set()
        while current_table not in self.schema.foreign_keys:
            if current_table in visited:
                raise SchemaError(f"snowflake cycle detected at table {current_table!r}")
            visited.add(current_table)
            edge = self._child_edge(current_table)
            if edge is None:
                raise SchemaError(
                    f"table {current_table!r} is neither a direct dimension nor a "
                    f"snowflake parent"
                )
            child = self.dimension(edge.child_table)
            child_codes = child.codes(edge.child_column)
            current_mask = current_mask[child_codes]
            current_table = edge.child_table
        return current_table, current_mask

    # ------------------------------------------------------------------
    # dimension → fact navigation
    # ------------------------------------------------------------------
    def dimension_mask(self, predicate: Predicate) -> np.ndarray:
        """Boolean mask over the rows of the predicate's (possibly outer) table."""
        table = self.table(predicate.table)
        return predicate.evaluate(table)

    def fact_mask_for_dimension_mask(
        self,
        dimension_name: str,
        dimension_mask: np.ndarray,
        chunk_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Translate a dimension-row mask into a fact-row mask via the FK.

        ``chunk_rows`` streams the FK column through the fact store's chunk
        path in fixed-size row ranges instead of materialising it whole —
        the output (one bool per fact row) is bit-identical either way, since
        each output row depends on exactly one FK code.  ``None`` reads the
        column in one piece (the in-memory fast path).
        """
        fk = self.schema.foreign_key_for(dimension_name)
        dimension_mask = np.asarray(dimension_mask, dtype=bool)
        if chunk_rows is None:
            return dimension_mask[self.fact.codes(fk.fact_column)]
        out = np.empty(self.fact.num_rows, dtype=bool)
        for start, stop in iter_chunks(self.fact.num_rows, chunk_rows):
            out[start:stop] = dimension_mask[
                self.fact.read_chunk(fk.fact_column, start, stop)
            ]
        return out

    def fact_mask_for_predicate(
        self, predicate: Predicate, chunk_rows: Optional[int] = None
    ) -> np.ndarray:
        """Boolean fact-row mask selecting rows whose joined tuple satisfies
        ``predicate``.

        Handles predicates on direct dimensions, on snowflaked dimensions and
        on fact-table attributes uniformly.  ``chunk_rows`` streams any fact
        column involved (a fact-attribute predicate's own column, or the FK
        column of the dimension path) chunk-wise; dimension-sized work is
        never chunked — dimensions are small by construction.
        """
        if predicate.table == self.fact.name:
            if chunk_rows is None:
                return predicate.evaluate(self.fact)
            out = np.empty(self.fact.num_rows, dtype=bool)
            for start, stop in iter_chunks(self.fact.num_rows, chunk_rows):
                out[start:stop] = predicate.evaluate_codes(
                    self.fact.read_chunk(predicate.attribute, start, stop)
                )
            return out
        mask = self.dimension_mask(predicate)
        direct_name, direct_mask = self.resolve_to_direct_dimension(predicate.table, mask)
        return self.fact_mask_for_dimension_mask(direct_name, direct_mask, chunk_rows)

    # ------------------------------------------------------------------
    # fan-out statistics (for LS / TM / R2T calibration)
    # ------------------------------------------------------------------
    def fan_out(
        self,
        dimension_name: str,
        fact_mask: Optional[np.ndarray] = None,
        chunk_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Number of (selected) fact tuples referencing each dimension key.

        Parameters
        ----------
        dimension_name:
            A dimension directly referenced by the fact table.
        fact_mask:
            Optional boolean mask restricting which fact rows are counted
            (e.g. the rows satisfying the query's other predicates).
        chunk_rows:
            Stream the FK column chunk-wise and accumulate per-chunk integer
            ``bincount`` partials.  Integer addition is exact, so the result
            is bit-identical for every chunking (``None`` = one chunk).
        """
        fk = self.schema.foreign_key_for(dimension_name)
        dim_rows = self.dimension(dimension_name).num_rows
        if fact_mask is not None:
            fact_mask = np.asarray(fact_mask, dtype=bool)
        counts: Optional[np.ndarray] = None
        for start, stop in iter_chunks(self.fact.num_rows, chunk_rows):
            codes = self.fact.read_chunk(fk.fact_column, start, stop)
            if fact_mask is not None:
                codes = codes[fact_mask[start:stop]]
            partial = np.bincount(codes, minlength=dim_rows)
            counts = partial if counts is None else counts + partial
        assert counts is not None  # iter_chunks always yields at least once
        return counts

    def max_fan_out(
        self,
        dimension_name: str,
        fact_mask: Optional[np.ndarray] = None,
        chunk_rows: Optional[int] = None,
    ) -> int:
        """Maximum fan-out of any key of ``dimension_name`` (the local sensitivity
        of a star-join count w.r.t. that private dimension)."""
        counts = self.fan_out(dimension_name, fact_mask, chunk_rows)
        return int(counts.max()) if counts.size else 0

    def selected_fact_codes(
        self,
        column_name: str,
        fact_mask: Optional[np.ndarray] = None,
        chunk_rows: Optional[int] = None,
    ) -> np.ndarray:
        """``fact.codes(column_name)[fact_mask]``, streamed chunk-wise.

        The gather preserves row order (per-chunk selections are concatenated
        in chunk order), so the result is bit-identical to whole-column fancy
        indexing for every chunking — this is what lets SUM contributions and
        grouped aggregates stay exact while a mapped fact column streams
        through in fixed-size buffers.  ``fact_mask=None`` selects every row.
        """
        if fact_mask is not None:
            fact_mask = np.asarray(fact_mask, dtype=bool)
        parts = []
        for start, stop in iter_chunks(self.fact.num_rows, chunk_rows):
            chunk = self.fact.read_chunk(column_name, start, stop)
            if fact_mask is not None:
                chunk = chunk[fact_mask[start:stop]]
            parts.append(chunk)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    @property
    def storage_kind(self) -> str:
        """The fact table's storage kind (``"memory"`` / ``"mapped"``)."""
        return self.fact.store.kind

    def spill_to(self, path: Union[str, Path], overwrite: bool = False) -> Path:
        """Write this instance in the mapped on-disk layout under ``path``.

        Returns the manifest path; attach it back (from any process) with
        :func:`repro.db.storage.attach_database`.  See ``docs/STORAGE.md``.
        """
        from repro.db.storage.mapped import spill_database

        return spill_database(self, path, overwrite=overwrite)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = {name: table.num_rows for name, table in self.dimensions.items()}
        return (
            f"StarDatabase(fact={self.fact.name!r} rows={self.fact.num_rows}, "
            f"dimensions={dims})"
        )
