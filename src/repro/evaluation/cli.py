"""Command-line entry point that regenerates every table and figure.

Usage::

    python -m repro.evaluation.cli                 # quick configuration
    python -m repro.evaluation.cli --full          # higher-fidelity configuration
    python -m repro.evaluation.cli --only table1 figure9
    python -m repro.evaluation.cli --output-dir results/
    python -m repro.evaluation.cli --jobs 4        # parallel trial scheduler
    python -m repro.evaluation.cli --jobs 4 --cache-backend shared --cache-stats

The whole invocation runs inside one :func:`~repro.evaluation.parallel.evaluation_session`:
a single worker pool serves every requested experiment, and the configured
cache backend (``--cache-backend``) is installed process-wide before that
pool forks, so with the shared backend the workers exchange selection masks,
data cubes and exact answers for the entire run (``--cache-stats`` reports
the counters).  Each experiment prints its text table and, when
``--output-dir`` is given, writes a CSV with the same rows.  The experiment
set and configurations are the ones documented in DESIGN.md and
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.db.cache import (
    CACHE_BACKENDS,
    DEFAULT_EVICTION_POLICY,
    EVICTION_POLICIES,
    active_backend,
)
from repro.obs.metrics import active_registry
from repro.obs.trace import span
from repro.evaluation.experiments import (
    ExperimentConfig,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)
from repro.evaluation.parallel import evaluation_session
from repro.evaluation.reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "main", "run_experiments"]

#: Registry of experiment name → callable(config) → ExperimentResult.
EXPERIMENTS: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "table1": lambda config: table1.run(config),
    "table2": lambda config: table2.run(config),
    "figure4": lambda config: figure4.run(config),
    "figure5": lambda config: figure5.run(config),
    "figure6": lambda config: figure6.run(config),
    "figure7": lambda config: figure7.run(config),
    "figure8": lambda config: figure8.run(config),
    "figure9": lambda config: figure9.run(config),
    "figure10": lambda config: figure10.run(config),
    "figure11": lambda config: figure11.run(config),
}


def _append_metrics(path: str, experiment: str, elapsed_s: float) -> None:
    """Append one unified registry snapshot (JSON line) for a finished
    experiment — the batch-run counterpart of the serving ``telemetry`` op.
    With ``jobs > 1`` the session's registry is fork-shared, so the counters
    cover every worker of the pool."""
    snapshot = active_registry().snapshot(
        subsystem={
            "name": "evaluation",
            "experiment": experiment,
            "elapsed_s": round(elapsed_s, 6),
            "ts_s": round(time.time(), 6),
        }
    )
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(snapshot, separators=(",", ":"), sort_keys=True) + "\n")


def run_experiments(
    names: Sequence[str],
    config: ExperimentConfig,
    output_dir: Optional[Path] = None,
    echo: Callable[[str], None] = print,
    cache_stats: bool = False,
) -> dict[str, ExperimentResult]:
    """Run the named experiments inside one evaluation session.

    The session (see :func:`repro.evaluation.parallel.evaluation_session`)
    gives the whole run a single worker pool and one cache backend, both
    selected by ``config``.  ``cache_stats=True`` echoes the backend's
    hit/miss/eviction counters after every experiment and at the end of the
    run.

    Unknown names raise ``KeyError`` before anything is executed so a typo in
    one name does not waste the time already spent on earlier experiments.
    """
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")

    results: dict[str, ExperimentResult] = {}
    # The local backend's counters are per process: with a worker pool the
    # parent only sees its own warm-up traffic, so say so rather than print
    # near-zero rates as if they covered the run.  The shared backend's
    # shared_* counters are fork-shared and do cover every worker.
    stats_scope = (
        " (parent process only; use --cache-backend shared for run-wide counters)"
        if config.jobs > 1 and config.cache_backend == "local"
        else ""
    )
    with evaluation_session(config):
        # With --warm-ahead the session installed a warming queue; between
        # experiments the batch run owns all the idle time there is, so the
        # drain is unbounded (contrast the serving tier's small batches).
        warming_worker = None
        if config.warm_ahead:
            from repro.db.cache.warming import WarmAheadWorker, active_queue

            queue = active_queue()
            if queue is not None:
                warming_worker = WarmAheadWorker(queue)
        if config.metrics_path:
            open(config.metrics_path, "w", encoding="utf-8").close()  # start clean
        for name in names:
            started = time.perf_counter()
            echo(f"\n=== running {name} ===")
            # One root span per experiment: scheduler cells, engine kernels
            # and cache round-trips (local or over the wire) descend from it.
            with span("evaluation.experiment", experiment=name):
                result = EXPERIMENTS[name](config)
            elapsed = time.perf_counter() - started
            echo(result.to_text())
            echo(f"[{name} finished in {elapsed:.1f}s]")
            if config.metrics_path:
                _append_metrics(config.metrics_path, name, elapsed)
            if warming_worker is not None:
                warmed = warming_worker.run_once(max_tasks=None)
                if warmed:
                    echo(f"[warm-ahead: replayed {warmed} missed queries after {name}]")
            if cache_stats:
                echo(
                    f"[cache after {name}: "
                    f"{active_backend().stats().summary()}{stats_scope}]"
                )
            if output_dir is not None:
                path = result.to_csv(Path(output_dir) / f"{name}.csv")
                echo(f"[rows written to {path}]")
            results[name] = result
        if cache_stats:
            echo(
                f"\n[cache backend {config.cache_backend!r} (run total): "
                f"{active_backend().stats().summary()}{stats_scope}]"
            )
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DP-starJ evaluation.",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        default=sorted(EXPERIMENTS),
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the higher-fidelity configuration (larger data, 10 trials)",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override the number of trials per cell"
    )
    parser.add_argument(
        "--rows-per-scale-factor",
        type=int,
        default=None,
        help="override the fact rows generated per unit of scale factor",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the master seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help=(
            "worker processes for the trial scheduler (default 1 = serial; "
            "results are identical for any value)"
        ),
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default="local",
        help=(
            "cache backend of the run's execution engines: 'local' keeps every "
            "cache in-process; 'shared' lets pool workers share selection masks, "
            "data cubes and exact answers through a manager process; 'remote' "
            "shares them through an out-of-process cache server (--cache-url / "
            "--cache-path) that batch and serving runs can both reach "
            "(results are identical for every choice)"
        ),
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help=(
            "with --cache-backend remote: address of a running cache server "
            "(python -m repro.db.cache.server); a comma-separated list shards "
            "the keyspace across those servers on a consistent-hash ring "
            "(results are identical either way; see docs/CACHE.md)"
        ),
    )
    parser.add_argument(
        "--cache-replicas",
        type=int,
        default=1,
        metavar="N",
        help=(
            "with a sharded --cache-url list: write each entry to N distinct "
            "shards; reads fail over to a replica when the primary shard's "
            "circuit breaker is open, before degrading to local-only"
        ),
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        metavar="FILE",
        help=(
            "with --cache-backend remote: start an embedded cache server "
            "persisting entries to this sqlite file instead of connecting to "
            "--cache-url; a later run against the same file starts warm"
        ),
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=192,
        help=(
            "maximum entries per bounded cache region (masks, contributions, "
            "results); the shared backend's cross-process tier is bounded at "
            "16x this value"
        ),
    )
    parser.add_argument(
        "--cache-policy",
        choices=EVICTION_POLICIES,
        default=DEFAULT_EVICTION_POLICY,
        help=(
            "eviction policy of every bounded cache tier: 'cost' keeps entries "
            "that are expensive to recompute per byte; 'lru' is classical "
            "recency (results are byte-identical for either choice)"
        ),
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "byte budget per bounded in-process cache region alongside the "
            "entry bound; cross-process tiers are bounded at 16x this value"
        ),
    )
    parser.add_argument(
        "--warm-ahead",
        action="store_true",
        help=(
            "replay observed cache misses through the engine between "
            "experiments (with --serve: between requests), pre-populating the "
            "cache tiers; results are byte-identical either way"
        ),
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="report cache hit/miss/eviction counters per experiment and per run",
    )
    parser.add_argument(
        "--storage",
        choices=("memory", "mapped"),
        default="memory",
        help=(
            "where generated instances live: 'memory' holds eager arrays; "
            "'mapped' spills each instance once to --data-dir and attaches it "
            "read-only, streaming the fact table chunk-wise so runs fit in a "
            "fraction of the data size and fork workers share one copy "
            "(results are byte-identical; see docs/STORAGE.md)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for the mapped instances (required with --storage mapped)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write one CSV per experiment",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "start the online query server instead of running experiments "
            "(python -m repro.serving with this invocation's seed and cache "
            "settings; see docs/SERVING.md)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --serve")
    parser.add_argument("--port", type=int, default=8642, help="bind port for --serve")
    parser.add_argument(
        "--ledger-path",
        default=None,
        metavar="FILE",
        help=(
            "with --serve: persist the per-analyst budget ledger to this "
            "sqlite journal so spent ε survives restarts and crashes"
        ),
    )
    parser.add_argument(
        "--trace-path",
        default=None,
        metavar="FILE",
        help=(
            "record request traces to this JSONL file (batch: one trace per "
            "experiment spanning scheduler cells, engine kernels and cache "
            "round-trips; with --serve: one per request); render with "
            "python -m repro.obs.summarize — results are byte-identical "
            "either way (see docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--metrics-path",
        default=None,
        metavar="FILE",
        help=(
            "append one unified telemetry snapshot (JSON line) per finished "
            "experiment; with --jobs > 1 the counters aggregate across the "
            "worker pool (batch runs only)"
        ),
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "with --serve: log requests slower than this threshold to "
            "--slow-query-path as structured JSONL"
        ),
    )
    parser.add_argument(
        "--slow-query-path",
        default=None,
        metavar="FILE",
        help="with --serve: destination of the slow-query log",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    config = ExperimentConfig.paper_scale() if args.full else ExperimentConfig.quick()
    if args.trials is not None:
        config.trials = args.trials
    if args.rows_per_scale_factor is not None:
        config.rows_per_scale_factor = args.rows_per_scale_factor
    if args.seed is not None:
        config.seed = args.seed
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.cache_size < 1:
        print("--cache-size must be at least 1", file=sys.stderr)
        return 2
    if args.cache_max_bytes is not None and args.cache_max_bytes < 1:
        print("--cache-max-bytes must be at least 1", file=sys.stderr)
        return 2
    if args.cache_backend != "remote" and (args.cache_url or args.cache_path):
        print("--cache-url/--cache-path require --cache-backend remote", file=sys.stderr)
        return 2
    if args.cache_url and args.cache_path:
        print("pass either --cache-url or --cache-path, not both", file=sys.stderr)
        return 2
    if args.cache_backend == "remote" and not (args.cache_url or args.cache_path):
        print(
            "--cache-backend remote needs a server: --cache-url host:port "
            "(python -m repro.db.cache.server) or --cache-path file "
            "(embedded, persisted)",
            file=sys.stderr,
        )
        return 2
    if args.cache_replicas < 1:
        print("--cache-replicas must be >= 1", file=sys.stderr)
        return 2
    if args.cache_replicas > 1 and not (args.cache_url and "," in args.cache_url):
        print(
            "--cache-replicas > 1 requires a sharded --cache-url list "
            "(host:port,host:port,...)",
            file=sys.stderr,
        )
        return 2
    if args.ledger_path and not args.serve:
        print("--ledger-path only applies with --serve", file=sys.stderr)
        return 2
    if (args.slow_query_ms is not None or args.slow_query_path) and not args.serve:
        print("--slow-query-ms/--slow-query-path only apply with --serve", file=sys.stderr)
        return 2
    if (args.slow_query_ms is None) != (args.slow_query_path is None):
        print("--slow-query-ms and --slow-query-path go together", file=sys.stderr)
        return 2
    if args.metrics_path and args.serve:
        print(
            "--metrics-path only applies to batch runs; with --serve use the "
            "'telemetry' op",
            file=sys.stderr,
        )
        return 2
    if args.storage == "mapped" and args.data_dir is None:
        print("--storage mapped requires --data-dir", file=sys.stderr)
        return 2
    if args.data_dir is not None and args.storage != "mapped":
        print("--data-dir only applies with --storage mapped", file=sys.stderr)
        return 2
    config.jobs = args.jobs
    config.cache_backend = args.cache_backend
    config.cache_size = args.cache_size
    config.cache_policy = args.cache_policy
    config.cache_max_bytes = args.cache_max_bytes
    config.warm_ahead = args.warm_ahead
    config.cache_url = args.cache_url
    config.cache_replicas = args.cache_replicas
    config.cache_path = args.cache_path
    config.ledger_path = args.ledger_path
    config.storage = args.storage
    config.data_dir = str(args.data_dir) if args.data_dir is not None else None
    config.trace_path = args.trace_path
    config.metrics_path = args.metrics_path

    if args.serve:
        # Delegate to the serving entry point with this invocation's seed and
        # cache configuration (experiment selection flags do not apply).
        from repro.serving.server import main as serve_main

        serve_argv = [
            "--host", args.host,
            "--port", str(args.port),
            "--seed", str(config.seed),
            "--cache-backend", config.cache_backend,
            "--cache-size", str(config.cache_size),
            "--cache-policy", config.cache_policy,
        ]
        if config.cache_max_bytes is not None:
            serve_argv += ["--cache-max-bytes", str(config.cache_max_bytes)]
        if config.warm_ahead:
            serve_argv += ["--warm-ahead"]
        if config.cache_url:
            serve_argv += ["--cache-url", config.cache_url]
        if config.cache_replicas > 1:
            serve_argv += ["--cache-replicas", str(config.cache_replicas)]
        if config.cache_path:
            serve_argv += ["--cache-path", config.cache_path]
        if config.ledger_path:
            serve_argv += ["--ledger-path", config.ledger_path]
        if config.storage == "mapped":
            serve_argv += ["--storage", "mapped", "--data-dir", config.data_dir]
        if config.trace_path:
            serve_argv += ["--trace-path", config.trace_path]
        if args.slow_query_ms is not None:
            serve_argv += [
                "--slow-query-ms", str(args.slow_query_ms),
                "--slow-query-path", args.slow_query_path,
            ]
        return serve_main(serve_argv)

    try:
        run_experiments(
            args.only, config, output_dir=args.output_dir, cache_stats=args.cache_stats
        )
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
