"""Predicate AST for star-join queries.

Section 3.1 of the paper observes that a star-join query "can be converted
into a predicate query": a conjunction Φ of single-table predicates φ_{a_i}
over the attributes of the dimension tables, each being either a *point
constraint* ``a_i = v`` or a *range constraint* ``a_i ∈ [l, r]``.  This module
implements exactly that class of predicates, plus the small extensions the
appendix queries need (OR over a small value set, the always-true predicate),
and the operations the rest of the library relies on:

* ``evaluate_codes`` / ``evaluate`` — boolean selection vectors over encoded
  columns and tables (used by the exact executor);
* ``indicator_vector`` — the 0/1 one-hot encoding over the attribute domain
  (used by the Workload Decomposition strategy of Section 5.3);
* ``selectivity`` — fraction of the domain selected (used in analyses and
  tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.db.domains import AttributeDomain
from repro.db.table import Table
from repro.exceptions import DomainError, QueryError

__all__ = [
    "Predicate",
    "PointPredicate",
    "RangePredicate",
    "SetPredicate",
    "TruePredicate",
    "ConjunctionPredicate",
]


@dataclass(frozen=True)
class Predicate:
    """Base class for single-attribute predicates.

    Parameters
    ----------
    table:
        Name of the table the attribute lives in (a dimension table for
        star-join predicates).
    attribute:
        Attribute (column) name.
    domain:
        The attribute's finite domain.  Carried on the predicate itself so
        that mechanisms can perturb predicates without schema access.
    """

    table: str
    attribute: str
    domain: AttributeDomain

    # -- interface -----------------------------------------------------
    def evaluate_codes(self, codes: np.ndarray) -> np.ndarray:
        """Return a boolean mask over an array of ordinal codes."""
        raise NotImplementedError

    def evaluate(self, table: Table) -> np.ndarray:
        """Return a boolean mask over the rows of ``table``."""
        column = table.column(self.attribute)
        return self.evaluate_codes(column.values)

    def indicator_vector(self) -> np.ndarray:
        """Return the 0/1 indicator of the predicate over its domain codes."""
        return self.evaluate_codes(np.arange(self.domain.size, dtype=np.int64)).astype(
            np.float64
        )

    @property
    def domain_size(self) -> int:
        """``|dom(a_i)|`` — the global sensitivity of the predicate (Thm 5.2)."""
        return self.domain.size

    def selectivity(self) -> float:
        """Fraction of the domain selected by the predicate."""
        return float(self.indicator_vector().mean())

    def describe(self) -> str:
        """Human-readable one-line description (used in reports/examples)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PointPredicate(Predicate):
    """Point constraint ``attribute = value``."""

    value: Any = None

    def __post_init__(self) -> None:
        if self.value not in self.domain:
            raise DomainError(
                f"point predicate value {self.value!r} is not in the domain of "
                f"{self.table}.{self.attribute}"
            )

    @property
    def code(self) -> int:
        return self.domain.encode(self.value)

    def evaluate_codes(self, codes: np.ndarray) -> np.ndarray:
        return np.asarray(codes) == self.code

    def describe(self) -> str:
        return f"{self.table}.{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Range constraint ``attribute ∈ [low, high]`` (inclusive, domain order)."""

    low: Any = None
    high: Any = None

    def __post_init__(self) -> None:
        # Validates membership and ordering.
        self.domain.code_interval(self.low, self.high)

    @property
    def low_code(self) -> int:
        return self.domain.encode(self.low)

    @property
    def high_code(self) -> int:
        return self.domain.encode(self.high)

    def evaluate_codes(self, codes: np.ndarray) -> np.ndarray:
        codes = np.asarray(codes)
        return (codes >= self.low_code) & (codes <= self.high_code)

    def describe(self) -> str:
        return f"{self.table}.{self.attribute} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True)
class SetPredicate(Predicate):
    """Membership constraint ``attribute ∈ {v1, v2, ...}``.

    Used for the appendix queries that OR two point constraints on the same
    attribute (e.g. ``Part.mfgr = 'MFGR#1' OR Part.mfgr = 'MFGR#2'``).
    """

    values: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise QueryError("set predicate requires at least one value")
        for value in self.values:
            if value not in self.domain:
                raise DomainError(
                    f"set predicate value {value!r} is not in the domain of "
                    f"{self.table}.{self.attribute}"
                )

    @property
    def codes(self) -> np.ndarray:
        return np.asarray(sorted(self.domain.encode(v) for v in self.values), dtype=np.int64)

    def evaluate_codes(self, codes: np.ndarray) -> np.ndarray:
        return np.isin(np.asarray(codes), self.codes)

    def describe(self) -> str:
        return f"{self.table}.{self.attribute} IN {tuple(self.values)!r}"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate over an attribute (selects the full domain)."""

    def evaluate_codes(self, codes: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(codes).shape, dtype=bool)

    def describe(self) -> str:
        return f"{self.table}.{self.attribute} IS ANY"


@dataclass(frozen=True)
class ConjunctionPredicate:
    """The composite predicate Φ of a star-join query.

    A conjunction of single-table predicates; the paper writes it
    ``Φ := φ_{a_1} ∧ ... ∧ φ_{a_n}``.  Each member predicate concerns one
    attribute of one (dimension) table.
    """

    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "predicates", tuple(self.predicates))

    def __iter__(self):
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    @property
    def tables(self) -> list[str]:
        """Tables referenced by the conjunction, in predicate order."""
        return [predicate.table for predicate in self.predicates]

    def by_table(self) -> dict[str, list[Predicate]]:
        """Group member predicates by the table they filter."""
        grouped: dict[str, list[Predicate]] = {}
        for predicate in self.predicates:
            grouped.setdefault(predicate.table, []).append(predicate)
        return grouped

    def domain_sizes(self) -> list[int]:
        """``|dom(a_i)|`` of each member predicate (Figure 8's x-axis)."""
        return [predicate.domain_size for predicate in self.predicates]

    def domain_product(self) -> int:
        """Size of the composite predicate's domain, ``Π_i |dom(a_i)|``."""
        product = 1
        for size in self.domain_sizes():
            product *= size
        return product

    def describe(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(predicate.describe() for predicate in self.predicates)

    @classmethod
    def of(cls, predicates: Iterable[Predicate]) -> "ConjunctionPredicate":
        return cls(predicates=tuple(predicates))


def one_hot_workload(
    predicates: Sequence[Predicate], domain: AttributeDomain
) -> np.ndarray:
    """Stack the indicator vectors of ``predicates`` into a workload matrix.

    Every predicate must concern the same attribute/domain; the result is an
    ``l × |dom(a)|`` 0/1 matrix — the per-dimension predicate matrix P_i^L of
    Section 5.3.
    """
    rows = []
    for predicate in predicates:
        if predicate.domain.size != domain.size or predicate.domain.name != domain.name:
            raise QueryError(
                "all predicates in a per-attribute workload matrix must share "
                f"the same domain; got {predicate.domain.name!r} vs {domain.name!r}"
            )
        rows.append(predicate.indicator_vector())
    return np.vstack(rows) if rows else np.zeros((0, domain.size))
